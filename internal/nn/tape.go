// Package nn is the neural-network substrate standing in for the paper's
// TensorFlow dependency: a small tape-based reverse-mode automatic
// differentiation engine over float64 vectors and matrices, plus dense
// layers and optimizers. It implements exactly the operations the LSched
// encoder (Eqs. 2–5) and predictor heads need: matrix-vector products,
// Hadamard products, concatenation, ReLU/LeakyReLU, softmax, and scalar
// reductions.
//
// Tapes recycle their node and float storage across Reset calls: the
// scheduler runs one forward pass per scheduling event, so allocation
// pressure — not FLOPs — would otherwise dominate. A tape additionally
// supports a gradient-free inference mode (SetInference) in which no
// Grad storage is allocated and no backward closures are recorded,
// halving the hot-path cost of greedy serving where Backward is never
// called.
package nn

import (
	"fmt"
	"math"
)

// Node is one value in the computation graph: a column vector (Cols==1)
// or a matrix, with storage in row-major order. Gradients accumulate in
// Grad during Backward. Nodes produced by a tape in inference mode have
// a nil Grad.
type Node struct {
	Val  []float64
	Grad []float64
	Rows int
	Cols int

	backward func()
	// param marks trainable parameters (receive gradient updates).
	param bool
	// frozen parameters participate in forward/backward but are skipped
	// by optimizers — the transfer-learning freeze (§6).
	frozen bool
	name   string
}

// Len returns the number of elements.
func (n *Node) Len() int { return len(n.Val) }

// IsParam reports whether the node is a trainable parameter.
func (n *Node) IsParam() bool { return n.param }

// Frozen reports whether the parameter is excluded from updates.
func (n *Node) Frozen() bool { return n.frozen }

// SetFrozen toggles transfer-learning freezing for a parameter.
func (n *Node) SetFrozen(f bool) { n.frozen = f }

// Name returns the parameter's registered name ("" for intermediates).
func (n *Node) Name() string { return n.name }

const slabSize = 1 << 16

// refSlabSize is the per-slab capacity of the node-pointer arena backing
// NodeSlice.
const refSlabSize = 1 << 12

// Tape records the computation graph for one forward pass and replays it
// in reverse for gradients. Parameters live outside the tape (they
// persist across passes); intermediate nodes come from the tape's arena
// and are recycled by Reset.
type Tape struct {
	nodes []*Node
	// node arena
	pool    []*Node
	poolIdx int
	// float slabs
	slabs   [][]float64
	slabIdx int
	slabOff int
	// node-pointer slabs backing NodeSlice
	refSlabs   [][]*Node
	refSlabIdx int
	refSlabOff int
	// inference disables gradient bookkeeping: nodes carry no Grad and
	// no backward closures, and Backward panics.
	inference bool
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// SetInference switches the tape between the recording mode (the
// default: full autodiff bookkeeping) and the gradient-free inference
// mode. In inference mode intermediate nodes carry a nil Grad, no
// backward closures are recorded, and Backward panics; forward values
// are bit-identical to recording mode. The mode may only change on an
// empty tape — toggle right after Reset.
func (t *Tape) SetInference(on bool) {
	if len(t.nodes) > 0 {
		panic("nn: SetInference on a non-empty tape; call Reset first")
	}
	t.inference = on
}

// Inference reports whether the tape is in gradient-free mode.
func (t *Tape) Inference() bool { return t.inference }

// Reset recycles all recorded intermediates so the tape can run another
// forward pass. Nodes obtained before the Reset must not be used after
// it. Parameter nodes are unaffected.
func (t *Tape) Reset() {
	t.nodes = t.nodes[:0]
	t.poolIdx = 0
	t.slabIdx = 0
	t.slabOff = 0
	t.refSlabIdx = 0
	t.refSlabOff = 0
}

// alloc hands out a zeroed float slice from the slab arena.
func (t *Tape) alloc(n int) []float64 {
	if n > slabSize {
		return make([]float64, n)
	}
	for t.slabIdx < len(t.slabs) && t.slabOff+n > slabSize {
		t.slabIdx++
		t.slabOff = 0
	}
	if t.slabIdx == len(t.slabs) {
		t.slabs = append(t.slabs, make([]float64, slabSize))
	}
	s := t.slabs[t.slabIdx][t.slabOff : t.slabOff+n : t.slabOff+n]
	t.slabOff += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// NodeSlice hands out a zeroed []*Node of length n from the tape's
// pointer arena, recycled by Reset. Use it for scratch collections of
// nodes on hot paths (the encoder's per-operator embeddings, the
// predictor's candidate scores) so per-event forward passes allocate
// nothing once the arenas are warm.
func (t *Tape) NodeSlice(n int) []*Node {
	if n > refSlabSize {
		return make([]*Node, n)
	}
	for t.refSlabIdx < len(t.refSlabs) && t.refSlabOff+n > refSlabSize {
		t.refSlabIdx++
		t.refSlabOff = 0
	}
	if t.refSlabIdx == len(t.refSlabs) {
		t.refSlabs = append(t.refSlabs, make([]*Node, refSlabSize))
	}
	s := t.refSlabs[t.refSlabIdx][t.refSlabOff : t.refSlabOff+n : t.refSlabOff+n]
	t.refSlabOff += n
	for i := range s {
		s[i] = nil
	}
	return s
}

// node hands out a recycled Node with zeroed Val (and, in recording
// mode, Grad) of length n.
func (t *Tape) node(n int) *Node {
	var nd *Node
	if t.poolIdx < len(t.pool) {
		nd = t.pool[t.poolIdx]
	} else {
		nd = &Node{}
		t.pool = append(t.pool, nd)
	}
	t.poolIdx++
	nd.Val = t.alloc(n)
	if t.inference {
		nd.Grad = nil
	} else {
		nd.Grad = t.alloc(n)
	}
	nd.Rows = n
	nd.Cols = 1
	nd.backward = nil
	nd.param = false
	nd.frozen = false
	nd.name = ""
	t.nodes = append(t.nodes, nd)
	return nd
}

// Const introduces an input vector (no gradient flows into it).
func (t *Tape) Const(vals []float64) *Node {
	out := t.node(len(vals))
	copy(out.Val, vals)
	return out
}

// Zeros introduces an all-zero vector of length n.
func (t *Tape) Zeros(n int) *Node { return t.node(n) }

// Backward seeds the given scalar node with gradient 1 and propagates
// gradients to every node recorded on the tape (and to parameters).
// It panics on a tape in inference mode: gradient-free forward passes
// record nothing to differentiate.
func (t *Tape) Backward(loss *Node) {
	if t.inference {
		panic("nn: Backward on a tape in inference mode")
	}
	if loss.Len() != 1 {
		panic(fmt.Sprintf("nn: Backward on non-scalar node of length %d", loss.Len()))
	}
	loss.Grad[0] = 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		if t.nodes[i].backward != nil {
			t.nodes[i].backward()
		}
	}
}

func sameLen(a, b *Node, op string) {
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("nn: %s length mismatch %d vs %d", op, a.Len(), b.Len()))
	}
}

// Add returns a+b elementwise.
func (t *Tape) Add(a, b *Node) *Node {
	sameLen(a, b, "Add")
	out := t.node(a.Len())
	for i := range out.Val {
		out.Val[i] = a.Val[i] + b.Val[i]
	}
	if !t.inference {
		out.backward = func() {
			for i, g := range out.Grad {
				a.Grad[i] += g
				b.Grad[i] += g
			}
		}
	}
	return out
}

// Sub returns a-b elementwise.
func (t *Tape) Sub(a, b *Node) *Node {
	sameLen(a, b, "Sub")
	out := t.node(a.Len())
	for i := range out.Val {
		out.Val[i] = a.Val[i] - b.Val[i]
	}
	if !t.inference {
		out.backward = func() {
			for i, g := range out.Grad {
				a.Grad[i] += g
				b.Grad[i] -= g
			}
		}
	}
	return out
}

// Mul returns the Hadamard (elementwise) product a⊙b — the product the
// paper's tree-convolution filters (Eq. 2) and attention scores (Eq. 3)
// are built from.
func (t *Tape) Mul(a, b *Node) *Node {
	sameLen(a, b, "Mul")
	out := t.node(a.Len())
	for i := range out.Val {
		out.Val[i] = a.Val[i] * b.Val[i]
	}
	if !t.inference {
		out.backward = func() {
			for i, g := range out.Grad {
				a.Grad[i] += g * b.Val[i]
				b.Grad[i] += g * a.Val[i]
			}
		}
	}
	return out
}

// Scale returns s*a for a constant scalar s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	out := t.node(a.Len())
	for i := range out.Val {
		out.Val[i] = s * a.Val[i]
	}
	if !t.inference {
		out.backward = func() {
			for i, g := range out.Grad {
				a.Grad[i] += s * g
			}
		}
	}
	return out
}

// ScaleBy returns s*a where s is a scalar node (gradient flows into s).
func (t *Tape) ScaleBy(a *Node, s *Node) *Node {
	if s.Len() != 1 {
		panic("nn: ScaleBy needs a scalar node")
	}
	out := t.node(a.Len())
	for i := range out.Val {
		out.Val[i] = s.Val[0] * a.Val[i]
	}
	if !t.inference {
		out.backward = func() {
			for i, g := range out.Grad {
				a.Grad[i] += s.Val[0] * g
				s.Grad[0] += a.Val[i] * g
			}
		}
	}
	return out
}

// MatVec returns W·x for matrix W (Rows×Cols) and vector x (len Cols).
func (t *Tape) MatVec(w, x *Node) *Node {
	if w.Cols != x.Len() {
		panic(fmt.Sprintf("nn: MatVec dims %dx%d · %d", w.Rows, w.Cols, x.Len()))
	}
	out := t.node(w.Rows)
	for r := 0; r < w.Rows; r++ {
		s := 0.0
		row := w.Val[r*w.Cols : (r+1)*w.Cols]
		for c, xv := range x.Val {
			s += row[c] * xv
		}
		out.Val[r] = s
	}
	if !t.inference {
		out.backward = func() {
			for r := 0; r < w.Rows; r++ {
				g := out.Grad[r]
				if g == 0 {
					continue
				}
				row := w.Val[r*w.Cols : (r+1)*w.Cols]
				grow := w.Grad[r*w.Cols : (r+1)*w.Cols]
				for c, xv := range x.Val {
					grow[c] += g * xv
					x.Grad[c] += g * row[c]
				}
			}
		}
	}
	return out
}

// Concat concatenates vectors into one vector. Callers may reuse their
// variadic backing array after the call.
func (t *Tape) Concat(parts ...*Node) *Node {
	held := t.NodeSlice(len(parts))
	copy(held, parts)
	return t.ConcatOwned(held)
}

// ConcatOwned is Concat over a slice whose ownership passes to the tape:
// the caller must not mutate parts afterwards (hand in a NodeSlice to
// stay allocation-free on hot paths).
func (t *Tape) ConcatOwned(parts []*Node) *Node {
	n := 0
	for _, p := range parts {
		n += p.Len()
	}
	out := t.node(n)
	off := 0
	for _, p := range parts {
		copy(out.Val[off:], p.Val)
		off += p.Len()
	}
	if !t.inference {
		out.backward = func() {
			off := 0
			for _, p := range parts {
				for i := range p.Val {
					p.Grad[i] += out.Grad[off+i]
				}
				off += p.Len()
			}
		}
	}
	return out
}

// ReLU applies max(0, x) elementwise.
func (t *Tape) ReLU(a *Node) *Node {
	out := t.node(a.Len())
	for i, v := range a.Val {
		if v > 0 {
			out.Val[i] = v
		}
	}
	if !t.inference {
		out.backward = func() {
			for i, g := range out.Grad {
				if a.Val[i] > 0 {
					a.Grad[i] += g
				}
			}
		}
	}
	return out
}

// LeakyReLU applies x>0 ? x : slope*x elementwise (the GAT nonlinearity).
func (t *Tape) LeakyReLU(a *Node, slope float64) *Node {
	out := t.node(a.Len())
	for i, v := range a.Val {
		if v > 0 {
			out.Val[i] = v
		} else {
			out.Val[i] = slope * v
		}
	}
	if !t.inference {
		out.backward = func() {
			for i, g := range out.Grad {
				if a.Val[i] > 0 {
					a.Grad[i] += g
				} else {
					a.Grad[i] += slope * g
				}
			}
		}
	}
	return out
}

// Tanh applies tanh elementwise.
func (t *Tape) Tanh(a *Node) *Node {
	out := t.node(a.Len())
	for i, v := range a.Val {
		out.Val[i] = math.Tanh(v)
	}
	if !t.inference {
		out.backward = func() {
			for i, g := range out.Grad {
				a.Grad[i] += g * (1 - out.Val[i]*out.Val[i])
			}
		}
	}
	return out
}

// Sum reduces a vector to a scalar.
func (t *Tape) Sum(a *Node) *Node {
	out := t.node(1)
	for _, v := range a.Val {
		out.Val[0] += v
	}
	if !t.inference {
		out.backward = func() {
			g := out.Grad[0]
			for i := range a.Grad {
				a.Grad[i] += g
			}
		}
	}
	return out
}

// Mean reduces a vector to its mean.
func (t *Tape) Mean(a *Node) *Node {
	s := t.Sum(a)
	return t.Scale(s, 1/float64(a.Len()))
}

// MeanOf averages vectors of equal length elementwise — the message
// aggregation of the PQE/AQE summarization networks. Callers may reuse
// the parts slice after the call.
func (t *Tape) MeanOf(parts []*Node) *Node {
	held := t.NodeSlice(len(parts))
	copy(held, parts)
	return t.MeanOfOwned(held)
}

// MeanOfOwned is MeanOf over a slice whose ownership passes to the tape:
// the caller must not mutate parts afterwards (hand in a NodeSlice to
// stay allocation-free on hot paths).
func (t *Tape) MeanOfOwned(parts []*Node) *Node {
	if len(parts) == 0 {
		panic("nn: MeanOf with no inputs")
	}
	out := t.node(parts[0].Len())
	inv := 1 / float64(len(parts))
	for _, p := range parts {
		sameLen(p, parts[0], "MeanOf")
		for i, v := range p.Val {
			out.Val[i] += v * inv
		}
	}
	if !t.inference {
		out.backward = func() {
			for _, p := range parts {
				for i := range p.Val {
					p.Grad[i] += out.Grad[i] * inv
				}
			}
		}
	}
	return out
}

// Slice extracts the element at idx as a scalar node.
func (t *Tape) Slice(a *Node, idx int) *Node {
	if idx < 0 || idx >= a.Len() {
		panic(fmt.Sprintf("nn: Slice index %d out of %d", idx, a.Len()))
	}
	out := t.node(1)
	out.Val[0] = a.Val[idx]
	if !t.inference {
		out.backward = func() {
			a.Grad[idx] += out.Grad[0]
		}
	}
	return out
}

// Softmax returns the softmax of a vector (numerically stabilized).
func (t *Tape) Softmax(a *Node) *Node {
	out := t.node(a.Len())
	max := math.Inf(-1)
	for _, v := range a.Val {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range a.Val {
		e := math.Exp(v - max)
		out.Val[i] = e
		sum += e
	}
	for i := range out.Val {
		out.Val[i] /= sum
	}
	if !t.inference {
		out.backward = func() {
			// dL/dx_i = y_i * (g_i - sum_j g_j y_j)
			dot := 0.0
			for j, g := range out.Grad {
				dot += g * out.Val[j]
			}
			for i := range a.Grad {
				a.Grad[i] += out.Val[i] * (out.Grad[i] - dot)
			}
		}
	}
	return out
}

// LogProbAt returns log(softmax(logits)[idx]) as a scalar node — the
// REINFORCE building block: loss contributions are −advantage·logπ(a).
func (t *Tape) LogProbAt(logits *Node, idx int) *Node {
	if idx < 0 || idx >= logits.Len() {
		panic(fmt.Sprintf("nn: LogProbAt index %d out of %d", idx, logits.Len()))
	}
	max := math.Inf(-1)
	for _, v := range logits.Val {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for _, v := range logits.Val {
		sum += math.Exp(v - max)
	}
	lse := max + math.Log(sum)
	out := t.node(1)
	out.Val[0] = logits.Val[idx] - lse
	if !t.inference {
		out.backward = func() {
			g := out.Grad[0]
			if g == 0 {
				return
			}
			for i, v := range logits.Val {
				p := math.Exp(v - lse)
				if i == idx {
					logits.Grad[i] += g * (1 - p)
				} else {
					logits.Grad[i] += g * (-p)
				}
			}
		}
	}
	return out
}

// Entropy returns the entropy of softmax(logits) as a scalar node, used
// as an exploration bonus during REINFORCE training.
func (t *Tape) Entropy(logits *Node) *Node {
	p := t.Softmax(logits)
	out := t.node(1)
	logs := t.alloc(p.Len())
	for i, v := range p.Val {
		if v > 1e-12 {
			logs[i] = math.Log(v)
			out.Val[0] -= v * logs[i]
		}
	}
	if !t.inference {
		out.backward = func() {
			g := out.Grad[0]
			if g == 0 {
				return
			}
			for i := range p.Val {
				p.Grad[i] += g * (-(logs[i] + 1))
			}
		}
	}
	return out
}

// AttnScore is the fused Eq. 3 kernel: it returns the scalar
// Σ_k LeakyReLU(a_k · concat(xp, x)_k) without materializing the
// concatenation, the Hadamard product, or the activation as separate
// tape nodes. a must have length len(xp)+len(x).
func (t *Tape) AttnScore(a, xp, x *Node, slope float64) *Node {
	if a.Len() != xp.Len()+x.Len() {
		panic(fmt.Sprintf("nn: AttnScore dims %d vs %d+%d", a.Len(), xp.Len(), x.Len()))
	}
	out := t.node(1)
	h := xp.Len()
	s := 0.0
	for i, v := range xp.Val {
		p := a.Val[i] * v
		if p > 0 {
			s += p
		} else {
			s += slope * p
		}
	}
	for i, v := range x.Val {
		p := a.Val[h+i] * v
		if p > 0 {
			s += p
		} else {
			s += slope * p
		}
	}
	out.Val[0] = s
	if !t.inference {
		out.backward = func() {
			g := out.Grad[0]
			if g == 0 {
				return
			}
			for i, v := range xp.Val {
				d := g
				if a.Val[i]*v <= 0 {
					d *= slope
				}
				a.Grad[i] += d * v
				xp.Grad[i] += d * a.Val[i]
			}
			for i, v := range x.Val {
				d := g
				if a.Val[h+i]*v <= 0 {
					d *= slope
				}
				a.Grad[h+i] += d * v
				x.Grad[i] += d * a.Val[h+i]
			}
		}
	}
	return out
}

// WeightedSum is the fused Eq. 5 kernel: out = Σ_i z_i · xs_i, where z
// is a vector of len(xs) coefficients. Gradients flow into both z and
// every xs_i. Callers may reuse the xs slice after the call.
func (t *Tape) WeightedSum(z *Node, xs []*Node) *Node {
	if z.Len() != len(xs) {
		panic(fmt.Sprintf("nn: WeightedSum %d coeffs for %d vectors", z.Len(), len(xs)))
	}
	held := t.NodeSlice(len(xs))
	copy(held, xs)
	out := t.node(held[0].Len())
	for k, x := range held {
		sameLen(x, held[0], "WeightedSum")
		zk := z.Val[k]
		for i, v := range x.Val {
			out.Val[i] += zk * v
		}
	}
	if !t.inference {
		out.backward = func() {
			for k, x := range held {
				zk := z.Val[k]
				dot := 0.0
				for i, g := range out.Grad {
					x.Grad[i] += zk * g
					dot += g * x.Val[i]
				}
				z.Grad[k] += dot
			}
		}
	}
	return out
}

// MulAdd is the fused accumulate kernel out += w⊙x over a list of
// (w, x) pairs plus a bias — the isotropic Eq. 2 aggregation in one
// node.
func (t *Tape) MulAdd(bias *Node, pairs ...[2]*Node) *Node {
	out := t.node(bias.Len())
	copy(out.Val, bias.Val)
	for _, pr := range pairs {
		w, x := pr[0], pr[1]
		sameLen(w, x, "MulAdd")
		sameLen(w, bias, "MulAdd")
		for i := range out.Val {
			out.Val[i] += w.Val[i] * x.Val[i]
		}
	}
	if !t.inference {
		held := make([][2]*Node, len(pairs))
		copy(held, pairs)
		out.backward = func() {
			for i, g := range out.Grad {
				bias.Grad[i] += g
			}
			for _, pr := range held {
				w, x := pr[0], pr[1]
				for i, g := range out.Grad {
					w.Grad[i] += g * x.Val[i]
					x.Grad[i] += g * w.Val[i]
				}
			}
		}
	}
	return out
}
