package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numericalGrad estimates d loss / d p.Val[i] by central differences,
// where loss is recomputed from scratch by forward().
func numericalGrad(p *Node, i int, forward func() float64) float64 {
	const h = 1e-6
	orig := p.Val[i]
	p.Val[i] = orig + h
	up := forward()
	p.Val[i] = orig - h
	down := forward()
	p.Val[i] = orig
	return (up - down) / (2 * h)
}

// checkGrads verifies every parameter's analytic gradient against the
// numeric one for a scalar-valued graph builder.
func checkGrads(t *testing.T, params *Params, build func(tp *Tape) *Node) {
	t.Helper()
	tape := NewTape()
	forward := func() float64 {
		tape.Reset()
		return build(tape).Val[0]
	}
	tape.Reset()
	loss := build(tape)
	params.ZeroGrads()
	tape.Backward(loss)
	// Snapshot analytic grads before finite differencing reuses the tape.
	type snap struct {
		p    *Node
		grad []float64
	}
	var snaps []snap
	for _, p := range params.All() {
		snaps = append(snaps, snap{p, append([]float64(nil), p.Grad...)})
	}
	for _, s := range snaps {
		for i := range s.grad {
			num := numericalGrad(s.p, i, forward)
			if diff := math.Abs(num - s.grad[i]); diff > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("param %s[%d]: analytic %.8f vs numeric %.8f", s.p.Name(), i, s.grad[i], num)
			}
		}
	}
}

func TestGradDense(t *testing.T) {
	params := NewParams(1)
	d := NewDense(params, "d", 3, 2)
	x := []float64{0.5, -1.2, 2.0}
	checkGrads(t, params, func(tp *Tape) *Node {
		return tp.Sum(d.ApplyReLU(tp, tp.Const(x)))
	})
}

func TestGradMLP(t *testing.T) {
	params := NewParams(2)
	m := NewMLP(params, "m", 4, 5, 3)
	x := []float64{1, -0.5, 0.25, 2}
	checkGrads(t, params, func(tp *Tape) *Node {
		return tp.Mean(tp.Tanh(m.Apply(tp, tp.Const(x))))
	})
}

func TestGradHadamardAndConcat(t *testing.T) {
	params := NewParams(3)
	w := params.Vector("w", 3)
	v := params.Vector("v", 3)
	x := []float64{0.3, -0.7, 1.1}
	checkGrads(t, params, func(tp *Tape) *Node {
		a := tp.Mul(w, tp.Const(x))
		b := tp.Mul(v, tp.Const(x))
		return tp.Sum(tp.Concat(a, b))
	})
}

func TestGradSoftmaxLogProb(t *testing.T) {
	params := NewParams(4)
	w := params.Vector("w", 4)
	checkGrads(t, params, func(tp *Tape) *Node {
		return tp.LogProbAt(w, 2)
	})
}

func TestGradEntropy(t *testing.T) {
	params := NewParams(5)
	w := params.Vector("w", 4)
	checkGrads(t, params, func(tp *Tape) *Node {
		return tp.Entropy(w)
	})
}

func TestGradAttnScoreFused(t *testing.T) {
	params := NewParams(6)
	a := params.Vector("a", 6)
	xp := params.Vector("xp", 3)
	x := params.Vector("x", 3)
	checkGrads(t, params, func(tp *Tape) *Node {
		// Route parameters through identity ops so tape nodes wrap them.
		xpn := tp.Add(xp, tp.Zeros(3))
		xn := tp.Add(x, tp.Zeros(3))
		return tp.AttnScore(a, xpn, xn, 0.2)
	})
}

func TestGradWeightedSumFused(t *testing.T) {
	params := NewParams(7)
	z := params.Vector("z", 3)
	a := params.Vector("va", 2)
	b := params.Vector("vb", 2)
	c := params.Vector("vc", 2)
	checkGrads(t, params, func(tp *Tape) *Node {
		zn := tp.Softmax(z)
		return tp.Sum(tp.WeightedSum(zn, []*Node{
			tp.Add(a, tp.Zeros(2)), tp.Add(b, tp.Zeros(2)), tp.Add(c, tp.Zeros(2)),
		}))
	})
}

func TestGradMulAddFused(t *testing.T) {
	params := NewParams(8)
	bias := params.Vector("bias", 3)
	w1 := params.Vector("w1", 3)
	x1 := params.Vector("x1", 3)
	w2 := params.Vector("w2", 3)
	x2 := params.Vector("x2", 3)
	checkGrads(t, params, func(tp *Tape) *Node {
		return tp.Sum(tp.ReLU(tp.MulAdd(bias,
			[2]*Node{w1, tp.Add(x1, tp.Zeros(3))},
			[2]*Node{w2, tp.Add(x2, tp.Zeros(3))},
		)))
	})
}

func TestGradFusedMatchesUnfused(t *testing.T) {
	// The fused AttnScore must equal Sum(LeakyReLU(a ⊙ concat(xp, x))).
	params := NewParams(9)
	a := params.Vector("a", 6)
	tape := NewTape()
	xp := tape.Const([]float64{0.4, -0.9, 1.3})
	x := tape.Const([]float64{-0.2, 0.8, -1.5})
	fused := tape.AttnScore(a, xp, x, 0.2)
	unfused := tape.Sum(tape.LeakyReLU(tape.Mul(a, tape.Concat(xp, x)), 0.2))
	if math.Abs(fused.Val[0]-unfused.Val[0]) > 1e-12 {
		t.Fatalf("fused %v != unfused %v", fused.Val[0], unfused.Val[0])
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw [6]float64) bool {
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 50 {
				return true // skip absurd inputs
			}
		}
		tape := NewTape()
		s := tape.Softmax(tape.Const(raw[:]))
		sum := 0.0
		for _, v := range s.Val {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDownConcatRoundTrip(t *testing.T) {
	f := func(a, b []float64) bool {
		if len(a) == 0 || len(b) == 0 || len(a) > 64 || len(b) > 64 {
			return true
		}
		for _, v := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		tape := NewTape()
		c := tape.Concat(tape.Const(a), tape.Const(b))
		if c.Len() != len(a)+len(b) {
			return false
		}
		for i, v := range a {
			if c.Val[i] != v {
				return false
			}
		}
		for i, v := range b {
			if c.Val[len(a)+i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTapeResetRecyclesMemory(t *testing.T) {
	tape := NewTape()
	for pass := 0; pass < 3; pass++ {
		tape.Reset()
		x := tape.Const([]float64{1, 2, 3})
		y := tape.Scale(x, 2)
		if y.Val[0] != 2 || y.Val[2] != 6 {
			t.Fatalf("pass %d: wrong values after reset: %v", pass, y.Val)
		}
		// Gradients must start zeroed each pass.
		for _, g := range y.Grad {
			if g != 0 {
				t.Fatalf("pass %d: grad not zeroed: %v", pass, y.Grad)
			}
		}
		tape.Backward(tape.Sum(y))
	}
}

func TestAdamReducesLoss(t *testing.T) {
	// Fit y = 2x with a single dense layer.
	params := NewParams(10)
	d := NewDense(params, "fit", 1, 1)
	opt := NewAdam(0.05)
	tape := NewTape()
	rng := rand.New(rand.NewSource(1))
	loss := func(x, y float64) *Node {
		pred := d.Apply(tape, tape.Const([]float64{x}))
		diff := tape.Sub(pred, tape.Const([]float64{y}))
		return tape.Sum(tape.Mul(diff, diff))
	}
	var first, last float64
	for i := 0; i < 300; i++ {
		x := rng.Float64()*4 - 2
		tape.Reset()
		l := loss(x, 2*x)
		if i == 0 {
			first = l.Val[0]
		}
		last = l.Val[0]
		params.ZeroGrads()
		tape.Backward(l)
		opt.Step(params)
	}
	if last > first/10 && last > 1e-3 {
		t.Fatalf("Adam failed to fit: first loss %v, last %v", first, last)
	}
	w, _ := params.Get("fit.W")
	if math.Abs(w.Val[0]-2) > 0.2 {
		t.Fatalf("fitted weight %v, want ~2", w.Val[0])
	}
}

func TestFrozenParamsSkipUpdates(t *testing.T) {
	params := NewParams(11)
	w := params.Vector("w", 2)
	orig := append([]float64(nil), w.Val...)
	w.SetFrozen(true)
	w.Grad[0], w.Grad[1] = 5, -5
	NewAdam(0.1).Step(params)
	NewSGD(0.1, 0.9).Step(params)
	for i := range orig {
		if w.Val[i] != orig[i] {
			t.Fatalf("frozen param updated: %v -> %v", orig, w.Val)
		}
	}
}

func TestSerializeLoadRoundTrip(t *testing.T) {
	a := NewParams(12)
	a.Matrix("m", 2, 3)
	a.Vector("v", 4)
	data, err := a.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	b := NewParams(13)
	b.Matrix("m", 2, 3)
	b.Vector("v", 4)
	if err := b.Load(data); err != nil {
		t.Fatal(err)
	}
	am, _ := a.Get("m")
	bm, _ := b.Get("m")
	for i := range am.Val {
		if am.Val[i] != bm.Val[i] {
			t.Fatal("matrix values differ after load")
		}
	}
	// Shape mismatch must error.
	c := NewParams(14)
	c.Matrix("m", 3, 3)
	if err := c.Load(data); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

func TestFreezeMatching(t *testing.T) {
	p := NewParams(15)
	p.Matrix("enc.conv0.wp", 2, 2)
	p.Matrix("enc.in.W", 2, 2)
	p.Matrix("pred.root.l0.W", 2, 2)
	n := p.FreezeMatching(".conv", ".l0")
	if n != 2 {
		t.Fatalf("froze %d params, want 2", n)
	}
	in, _ := p.Get("enc.in.W")
	if in.Frozen() {
		t.Fatal("input projection should stay trainable")
	}
	p.Unfreeze()
	conv, _ := p.Get("enc.conv0.wp")
	if conv.Frozen() {
		t.Fatal("Unfreeze failed")
	}
}

func TestClipGrads(t *testing.T) {
	p := NewParams(16)
	w := p.Vector("w", 2)
	w.Grad[0], w.Grad[1] = 30, 40 // norm 50
	p.ClipGrads(5)
	if math.Abs(p.GradNorm()-5) > 1e-9 {
		t.Fatalf("clipped norm %v, want 5", p.GradNorm())
	}
	if math.Abs(w.Grad[0]/w.Grad[1]-0.75) > 1e-9 {
		t.Fatal("clipping changed gradient direction")
	}
}
