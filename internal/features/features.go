// Package features extracts the physical-plan feature vectors of §4.1:
// per-operator features (OPF), per-edge features (EDF), and per-query
// features (QF). Static features are computed once per query; dynamic
// features (O-WO, O-DUR, O-MEM, Q-ATH, Q-FTH, Q-LOC) are recomputed at
// every scheduling event from the engine's execution statistics.
package features

import (
	"hash/fnv"
	"math"

	"repro/internal/engine"
	"repro/internal/plan"
)

// Config fixes the feature-vector dimensions. Vocabulary-valued features
// (input relations, columns) are feature-hashed into fixed-width one-hot
// buckets so one trained model serves any schema; block bitmaps and the
// thread-locality vector are downsized with the paper's moving average
// (Eq. 1).
type Config struct {
	// RelBuckets is the hashed width of the O-IN relation one-hot.
	RelBuckets int
	// ColBuckets is the hashed width of the O-COLS column one-hot.
	ColBuckets int
	// BlockFeat is the downsized width of the O-BLCKS bitmap.
	BlockFeat int
	// LocFeat is the downsized width of the Q-LOC thread-locality vector.
	LocFeat int
}

// DefaultConfig returns the dimensions used throughout the experiments.
func DefaultConfig() Config {
	return Config{RelBuckets: 12, ColBuckets: 12, BlockFeat: 8, LocFeat: 8}
}

// connectivityDims is the width of the O-CON summary (in-degree,
// out-degree, depth, is-leaf, is-sink). The full adjacency structure is
// consumed by the tree convolution itself, which walks the DAG; the
// summary gives each node's local shape as a dense feature.
const connectivityDims = 5

// scalarDims counts O-WO, O-DUR, O-MEM.
const scalarDims = 3

// OpDim returns the per-operator feature width under the config.
func (c Config) OpDim() int {
	return plan.NumOpTypes + connectivityDims + c.RelBuckets + c.ColBuckets + c.BlockFeat + scalarDims
}

// EdgeDim returns the per-edge feature width (E-NPB, E-DIR).
func (c Config) EdgeDim() int { return 2 }

// QueryDim returns the per-query feature width (Q-ATH, Q-FTH, Q-LOC).
func (c Config) QueryDim() int { return 2 + c.LocFeat }

// Extractor computes feature vectors from engine state.
type Extractor struct {
	cfg Config
}

// NewExtractor returns an extractor with the given dimensions.
func NewExtractor(cfg Config) *Extractor {
	return &Extractor{cfg: cfg}
}

// Config returns the extractor's dimension config.
func (e *Extractor) Config() Config { return e.cfg }

// Downsample implements Eq. 1: it reduces bitmap b to out values, each
// the mean of its stride of the original array.
func Downsample(b []float64, out int) []float64 {
	d := make([]float64, out)
	if len(b) == 0 || out <= 0 {
		return d
	}
	stride := float64(len(b)) / float64(out)
	for j := 0; j < out; j++ {
		lo := int(float64(j) * stride)
		hi := int(float64(j+1) * stride)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(b) {
			hi = len(b)
		}
		s := 0.0
		for k := lo; k < hi; k++ {
			s += b[k]
		}
		d[j] = s / float64(hi-lo)
	}
	return d
}

// downsampleSuffix is Downsample applied to a length-total bitmap whose
// first done entries are 0 and the rest 1, exploiting the suffix shape.
func downsampleSuffix(total, done, out int) []float64 {
	d := make([]float64, out)
	if total <= 0 || out <= 0 {
		return d
	}
	stride := float64(total) / float64(out)
	for j := 0; j < out; j++ {
		lo := int(float64(j) * stride)
		hi := int(float64(j+1) * stride)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > total {
			hi = total
		}
		remLo := lo
		if done > remLo {
			remLo = done
		}
		if remLo < hi {
			d[j] = float64(hi-remLo) / float64(hi-lo)
		}
	}
	return d
}

func hashBucket(s string, buckets int) int {
	h := fnv.New32a()
	h.Write([]byte(s))
	return int(h.Sum32() % uint32(buckets))
}

// Operator computes the OPF vector for one operator of one running
// query. It combines the static features (O-TY, O-CON, O-IN, O-COLS,
// O-BLCKS) with the dynamic ones (O-WO, O-DUR, O-MEM) from the engine's
// cost estimator.
func (e *Extractor) Operator(st *engine.State, q *engine.QueryState, os *engine.OpState) []float64 {
	c := e.cfg
	v := make([]float64, 0, c.OpDim())
	op := os.Op

	// O-TY: operator type one-hot.
	ty := make([]float64, plan.NumOpTypes)
	ty[op.Type] = 1
	v = append(v, ty...)

	// O-CON: connectivity summary.
	depth := 0.0
	for o := op; len(o.Children()) > 0; {
		o = o.Children()[0].Child
		depth++
	}
	con := [connectivityDims]float64{
		float64(len(op.Children())),
		float64(len(op.Parents())),
		depth / 8.0,
		b2f(len(op.Children()) == 0),
		b2f(len(op.Parents()) == 0),
	}
	v = append(v, con[:]...)

	// O-IN: hashed one-hot of input relations.
	in := make([]float64, c.RelBuckets)
	for _, r := range op.InputRelations {
		in[hashBucket(r, c.RelBuckets)] = 1
	}
	v = append(v, in...)

	// O-COLS: hashed one-hot of touched columns.
	cols := make([]float64, c.ColBuckets)
	for _, col := range op.Columns {
		cols[hashBucket(col, c.ColBuckets)] = 1
	}
	v = append(v, cols...)

	// O-BLCKS: bitmap of blocks still to process, downsized by Eq. 1.
	// Work orders complete in block order, so the remaining bitmap is a
	// contiguous suffix and each bucket's mean is the fraction of the
	// bucket past the completion point — computed without materializing
	// the (possibly thousands-long) bitmap.
	v = append(v, downsampleSuffix(os.TotalWOs, os.Completed, c.BlockFeat)...)

	// O-WO, O-DUR, O-MEM (log-compressed dynamic scalars).
	rem := os.Remaining()
	key := q.ID*1024 + op.ID
	v = append(v,
		math.Log1p(float64(rem)),
		math.Log1p(st.Estimator.EstimateDuration(key, rem)),
		math.Log1p(st.Estimator.EstimateMemory(key, rem)),
	)
	return v
}

// Edge computes the EDF vector for one plan edge.
func (e *Extractor) Edge(ed *plan.Edge) []float64 {
	return []float64{b2f(ed.NonPipelineBreaking), b2f(ed.SourceIsChild)}
}

// Query computes the QF vector for one running query: assigned threads,
// free threads, and the downsized thread-locality vector.
func (e *Extractor) Query(st *engine.State, q *engine.QueryState) []float64 {
	c := e.cfg
	v := make([]float64, 0, c.QueryDim())
	v = append(v,
		math.Log1p(float64(q.AssignedThreads)),
		math.Log1p(float64(st.FreeThreads())),
	)
	v = append(v, Downsample(st.LocalityVector(q), c.LocFeat)...)
	return v
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
