// Package features extracts the physical-plan feature vectors of §4.1:
// per-operator features (OPF), per-edge features (EDF), and per-query
// features (QF). Static features are computed once per query; dynamic
// features (O-WO, O-DUR, O-MEM, Q-ATH, Q-FTH, Q-LOC) are recomputed at
// every scheduling event from the engine's execution statistics.
package features

import (
	"hash/fnv"
	"math"

	"repro/internal/engine"
	"repro/internal/plan"
)

// Config fixes the feature-vector dimensions. Vocabulary-valued features
// (input relations, columns) are feature-hashed into fixed-width one-hot
// buckets so one trained model serves any schema; block bitmaps and the
// thread-locality vector are downsized with the paper's moving average
// (Eq. 1).
type Config struct {
	// RelBuckets is the hashed width of the O-IN relation one-hot.
	RelBuckets int
	// ColBuckets is the hashed width of the O-COLS column one-hot.
	ColBuckets int
	// BlockFeat is the downsized width of the O-BLCKS bitmap.
	BlockFeat int
	// LocFeat is the downsized width of the Q-LOC thread-locality vector.
	LocFeat int
}

// DefaultConfig returns the dimensions used throughout the experiments.
func DefaultConfig() Config {
	return Config{RelBuckets: 12, ColBuckets: 12, BlockFeat: 8, LocFeat: 8}
}

// connectivityDims is the width of the O-CON summary (in-degree,
// out-degree, depth, is-leaf, is-sink). The full adjacency structure is
// consumed by the tree convolution itself, which walks the DAG; the
// summary gives each node's local shape as a dense feature.
const connectivityDims = 5

// scalarDims counts O-WO, O-DUR, O-MEM.
const scalarDims = 3

// OpDim returns the per-operator feature width under the config.
func (c Config) OpDim() int {
	return plan.NumOpTypes + connectivityDims + c.RelBuckets + c.ColBuckets + c.BlockFeat + scalarDims
}

// EdgeDim returns the per-edge feature width (E-NPB, E-DIR).
func (c Config) EdgeDim() int { return 2 }

// QueryDim returns the per-query feature width (Q-ATH, Q-FTH, Q-LOC).
func (c Config) QueryDim() int { return 2 + c.LocFeat }

// Extractor computes feature vectors from engine state.
type Extractor struct {
	cfg Config
}

// NewExtractor returns an extractor with the given dimensions.
func NewExtractor(cfg Config) *Extractor {
	return &Extractor{cfg: cfg}
}

// Config returns the extractor's dimension config.
func (e *Extractor) Config() Config { return e.cfg }

// Downsample implements Eq. 1: it reduces bitmap b to out values, each
// the mean of its stride of the original array.
func Downsample(b []float64, out int) []float64 {
	d := make([]float64, out)
	if len(b) == 0 || out <= 0 {
		return d
	}
	stride := float64(len(b)) / float64(out)
	for j := 0; j < out; j++ {
		lo := int(float64(j) * stride)
		hi := int(float64(j+1) * stride)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(b) {
			hi = len(b)
		}
		s := 0.0
		for k := lo; k < hi; k++ {
			s += b[k]
		}
		d[j] = s / float64(hi-lo)
	}
	return d
}

// appendDownsampleSuffix appends Downsample applied to a length-total
// bitmap whose first done entries are 0 and the rest 1, exploiting the
// suffix shape to avoid materializing the bitmap.
func appendDownsampleSuffix(dst []float64, total, done, out int) []float64 {
	if out <= 0 {
		return dst
	}
	if total <= 0 {
		return appendZeros(dst, out)
	}
	stride := float64(total) / float64(out)
	for j := 0; j < out; j++ {
		lo := int(float64(j) * stride)
		hi := int(float64(j+1) * stride)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > total {
			hi = total
		}
		remLo := lo
		if done > remLo {
			remLo = done
		}
		v := 0.0
		if remLo < hi {
			v = float64(hi-remLo) / float64(hi-lo)
		}
		dst = append(dst, v)
	}
	return dst
}

// appendZeros appends n zero values to dst.
func appendZeros(dst []float64, n int) []float64 {
	for i := 0; i < n; i++ {
		dst = append(dst, 0)
	}
	return dst
}

func hashBucket(s string, buckets int) int {
	h := fnv.New32a()
	h.Write([]byte(s))
	return int(h.Sum32() % uint32(buckets))
}

// Operator computes the OPF vector for one operator of one running
// query. It combines the static features (O-TY, O-CON, O-IN, O-COLS,
// O-BLCKS) with the dynamic ones (O-WO, O-DUR, O-MEM) from the engine's
// cost estimator.
func (e *Extractor) Operator(st *engine.State, q *engine.QueryState, os *engine.OpState) []float64 {
	return e.AppendOperator(make([]float64, 0, e.cfg.OpDim()), st, q, os)
}

// AppendOperator appends the OPF vector to dst and returns the extended
// slice. This is the allocation-free form used on the per-event hot
// path: no intermediate one-hot or bitmap slices are materialized.
func (e *Extractor) AppendOperator(dst []float64, st *engine.State, q *engine.QueryState, os *engine.OpState) []float64 {
	c := e.cfg
	op := os.Op

	// O-TY: operator type one-hot, written in place.
	base := len(dst)
	dst = appendZeros(dst, plan.NumOpTypes)
	dst[base+int(op.Type)] = 1

	// O-CON: connectivity summary.
	depth := 0.0
	for o := op; len(o.Children()) > 0; {
		o = o.Children()[0].Child
		depth++
	}
	dst = append(dst,
		float64(len(op.Children())),
		float64(len(op.Parents())),
		depth/8.0,
		b2f(len(op.Children()) == 0),
		b2f(len(op.Parents()) == 0),
	)

	// O-IN: hashed one-hot of input relations.
	base = len(dst)
	dst = appendZeros(dst, c.RelBuckets)
	for _, r := range op.InputRelations {
		dst[base+hashBucket(r, c.RelBuckets)] = 1
	}

	// O-COLS: hashed one-hot of touched columns.
	base = len(dst)
	dst = appendZeros(dst, c.ColBuckets)
	for _, col := range op.Columns {
		dst[base+hashBucket(col, c.ColBuckets)] = 1
	}

	// O-BLCKS: bitmap of blocks still to process, downsized by Eq. 1.
	// Work orders complete in block order, so the remaining bitmap is a
	// contiguous suffix and each bucket's mean is the fraction of the
	// bucket past the completion point — computed without materializing
	// the (possibly thousands-long) bitmap.
	dst = appendDownsampleSuffix(dst, os.TotalWOs, os.Completed, c.BlockFeat)

	// O-WO, O-DUR, O-MEM (log-compressed dynamic scalars).
	rem := os.Remaining()
	key := q.ID*1024 + op.ID
	return append(dst,
		math.Log1p(float64(rem)),
		math.Log1p(st.Estimator.EstimateDuration(key, rem)),
		math.Log1p(st.Estimator.EstimateMemory(key, rem)),
	)
}

// Edge computes the EDF vector for one plan edge.
func (e *Extractor) Edge(ed *plan.Edge) []float64 {
	return e.AppendEdge(make([]float64, 0, e.cfg.EdgeDim()), ed)
}

// AppendEdge appends the EDF vector to dst and returns the extended
// slice.
func (e *Extractor) AppendEdge(dst []float64, ed *plan.Edge) []float64 {
	return append(dst, b2f(ed.NonPipelineBreaking), b2f(ed.SourceIsChild))
}

// Query computes the QF vector for one running query: assigned threads,
// free threads, and the downsized thread-locality vector.
func (e *Extractor) Query(st *engine.State, q *engine.QueryState) []float64 {
	return e.AppendQuery(make([]float64, 0, e.cfg.QueryDim()), st, q)
}

// AppendQuery appends the QF vector to dst and returns the extended
// slice. The Q-LOC locality bitmap is downsized bucket by bucket
// without materializing the per-thread vector.
func (e *Extractor) AppendQuery(dst []float64, st *engine.State, q *engine.QueryState) []float64 {
	c := e.cfg
	dst = append(dst,
		math.Log1p(float64(q.AssignedThreads)),
		math.Log1p(float64(st.FreeThreads())),
	)
	// Downsample(st.LocalityVector(q), c.LocFeat) computed in place.
	total := len(st.Threads)
	if total == 0 || c.LocFeat <= 0 {
		return appendZeros(dst, c.LocFeat)
	}
	stride := float64(total) / float64(c.LocFeat)
	for j := 0; j < c.LocFeat; j++ {
		lo := int(float64(j) * stride)
		hi := int(float64(j+1) * stride)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > total {
			hi = total
		}
		s := 0.0
		for k := lo; k < hi; k++ {
			if st.Threads[k].LastQuery == q.ID {
				s++
			}
		}
		dst = append(dst, s/float64(hi-lo))
	}
	return dst
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
