package features

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/plan"
)

func TestDownsampleEq1PaperExample(t *testing.T) {
	// The paper's example: b = {1,1,0,1,1,0} reduced to size 3 gives
	// d = {1, 0.5, 0.5}? No — the paper computes d[0]=1, d[1] and d[2]
	// as 1 and 0.5: bucket strides of 2 give means {1, 0.5, 0.5}…
	// Working Eq. 1 directly with |d|=3, |b|=6: d_j = mean of b over
	// [j*2, (j+1)*2) = {mean(1,1), mean(0,1), mean(1,0)} = {1, .5, .5}.
	got := Downsample([]float64{1, 1, 0, 1, 1, 0}, 3)
	want := []float64{1, 0.5, 0.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Downsample = %v, want %v", got, want)
		}
	}
}

func TestDownsampleEdgeCases(t *testing.T) {
	if got := Downsample(nil, 4); len(got) != 4 {
		t.Fatal("nil input must still produce the requested width")
	}
	// Fewer inputs than outputs: values spread without panics.
	got := Downsample([]float64{1, 0}, 4)
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestDownsampleSuffixMatchesGeneric(t *testing.T) {
	f := func(total, done uint8, out uint8) bool {
		n := int(total%50) + 1
		d := int(done) % (n + 1)
		w := int(out%8) + 1
		bitmap := make([]float64, n)
		for i := d; i < n; i++ {
			bitmap[i] = 1
		}
		a := Downsample(bitmap, w)
		b := appendDownsampleSuffix(nil, n, d, w)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// testState builds a minimal engine state with one running query.
func testState(t *testing.T) (*engine.State, *engine.QueryState) {
	t.Helper()
	b := plan.NewBuilder("q")
	scan := b.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"orders"}, Columns: []string{"o_orderdate"}, EstBlocks: 10})
	sel := b.Add(&plan.Operator{Type: plan.Select, InputRelations: []string{"orders"}, Columns: []string{"o_orderdate"}, EstBlocks: 10})
	b.ConnectAuto(scan, sel)
	p := b.MustBuild()
	sim := engine.NewSim(engine.SimConfig{Threads: 4, Seed: 1})
	// Run one no-op event to materialize a QueryState via the public
	// API: instead, construct state through a tiny scheduler run.
	var captured *engine.State
	var capturedQ *engine.QueryState
	grab := schedFunc(func(st *engine.State, _ engine.Event) []engine.Decision {
		if len(st.Queries) == 0 {
			return nil
		}
		if captured == nil {
			captured = st
			capturedQ = st.Queries[0]
		}
		// Finish the query promptly.
		var ds []engine.Decision
		for _, q := range st.Queries {
			for _, root := range q.SchedulableRoots() {
				ds = append(ds, engine.Decision{QueryID: q.ID, RootOpID: root.ID, PipelineDepth: 1, Threads: 4})
			}
		}
		return ds
	})
	if _, err := sim.Run(grab, []engine.Arrival{{Plan: p, At: 0}}); err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("scheduler never invoked")
	}
	return captured, capturedQ
}

type schedFunc func(*engine.State, engine.Event) []engine.Decision

func (schedFunc) Name() string { return "test" }
func (f schedFunc) OnEvent(st *engine.State, ev engine.Event) []engine.Decision {
	return f(st, ev)
}

func TestOperatorFeatureDimensions(t *testing.T) {
	cfg := DefaultConfig()
	ext := NewExtractor(cfg)
	st, q := testState(t)
	for _, os := range q.OpStates {
		v := ext.Operator(st, q, os)
		if len(v) != cfg.OpDim() {
			t.Fatalf("op feature len %d, want %d", len(v), cfg.OpDim())
		}
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("non-finite feature at %d", i)
			}
		}
	}
	qv := ext.Query(st, q)
	if len(qv) != cfg.QueryDim() {
		t.Fatalf("query feature len %d, want %d", len(qv), cfg.QueryDim())
	}
	for _, e := range q.Plan.Edges {
		ev := ext.Edge(e)
		if len(ev) != cfg.EdgeDim() {
			t.Fatalf("edge feature len %d, want %d", len(ev), cfg.EdgeDim())
		}
	}
}

func TestOperatorTypeOneHot(t *testing.T) {
	cfg := DefaultConfig()
	ext := NewExtractor(cfg)
	st, q := testState(t)
	v := ext.Operator(st, q, q.OpStates[0]) // TableScan
	ones := 0
	for i := 0; i < plan.NumOpTypes; i++ {
		if v[i] == 1 {
			ones++
			if plan.OpType(i) != plan.TableScan {
				t.Fatalf("one-hot set at %v, want TableScan", plan.OpType(i))
			}
		} else if v[i] != 0 {
			t.Fatalf("one-hot slot %d has value %v", i, v[i])
		}
	}
	if ones != 1 {
		t.Fatalf("one-hot has %d ones", ones)
	}
}

func TestEdgeFeatureEncodesNPB(t *testing.T) {
	ext := NewExtractor(DefaultConfig())
	e := &plan.Edge{NonPipelineBreaking: true, SourceIsChild: true}
	v := ext.Edge(e)
	if v[0] != 1 || v[1] != 1 {
		t.Fatalf("edge features %v", v)
	}
	e.NonPipelineBreaking = false
	if ext.Edge(e)[0] != 0 {
		t.Fatal("E-NPB should be 0 for breakers")
	}
}

func TestAppendFormsMatchAllocating(t *testing.T) {
	ext := NewExtractor(DefaultConfig())
	st, q := testState(t)
	scratch := make([]float64, 0, 256)
	for _, os := range q.OpStates {
		want := ext.Operator(st, q, os)
		scratch = ext.AppendOperator(scratch[:0], st, q, os)
		if len(scratch) != len(want) {
			t.Fatalf("AppendOperator len %d, want %d", len(scratch), len(want))
		}
		for i := range want {
			if scratch[i] != want[i] {
				t.Fatalf("AppendOperator[%d] = %v, want %v", i, scratch[i], want[i])
			}
		}
	}
	wantQ := ext.Query(st, q)
	scratch = ext.AppendQuery(scratch[:0], st, q)
	for i := range wantQ {
		if scratch[i] != wantQ[i] {
			t.Fatalf("AppendQuery[%d] = %v, want %v", i, scratch[i], wantQ[i])
		}
	}
	for _, ed := range q.Plan.Edges {
		wantE := ext.Edge(ed)
		scratch = ext.AppendEdge(scratch[:0], ed)
		for i := range wantE {
			if scratch[i] != wantE[i] {
				t.Fatalf("AppendEdge[%d] = %v, want %v", i, scratch[i], wantE[i])
			}
		}
	}
}

func TestDynamicFeaturesUseEstimator(t *testing.T) {
	cfg := DefaultConfig()
	ext := NewExtractor(cfg)
	st, q := testState(t)
	os := q.OpStates[0]
	// Force a known estimator state: 3 completed orders of 2.0s each.
	st.Estimator = costmodel.NewEstimator(4, 1, 1)
	key := q.ID*1024 + os.Op.ID
	st.Estimator.ObserveCompletion(key, 2, 5)
	st.Estimator.ObserveCompletion(key, 2, 5)
	v := ext.Operator(st, q, os)
	// The last three entries are log1p(O-WO), log1p(O-DUR), log1p(O-MEM).
	n := len(v)
	rem := float64(os.Remaining())
	if math.Abs(v[n-3]-math.Log1p(rem)) > 1e-9 {
		t.Fatalf("O-WO = %v, want log1p(%v)", v[n-3], rem)
	}
	if math.Abs(v[n-2]-math.Log1p(2*rem)) > 1e-9 {
		t.Fatalf("O-DUR = %v, want log1p(%v)", v[n-2], 2*rem)
	}
	if math.Abs(v[n-1]-math.Log1p(5*rem)) > 1e-9 {
		t.Fatalf("O-MEM = %v, want log1p(%v)", v[n-1], 5*rem)
	}
}
