package storage

import (
	"fmt"
	"sort"
)

// Dictionary is an order-preserving string dictionary shared by every
// block of a relation's dictionary-encoded column. Values are stored
// sorted, so code order equals lexicographic string order: a sort or
// range comparison over codes is exactly a sort or range comparison
// over the decoded strings, which is what lets the engine run string
// select/build/probe/sort through its integer kernels unchanged.
//
// A Dictionary is immutable after construction, so concurrent readers
// (worker goroutines decoding or translating codes) need no locking.
type Dictionary struct {
	values []string
	codes  map[string]int64
}

// NewDictionary builds a dictionary over the distinct values of vals.
// The input need not be sorted or deduplicated.
func NewDictionary(vals []string) *Dictionary {
	seen := make(map[string]struct{}, len(vals))
	distinct := make([]string, 0, len(vals))
	for _, v := range vals {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			distinct = append(distinct, v)
		}
	}
	sort.Strings(distinct)
	d := &Dictionary{values: distinct, codes: make(map[string]int64, len(distinct))}
	for i, v := range distinct {
		d.codes[v] = int64(i)
	}
	return d
}

// Len returns the number of distinct values.
func (d *Dictionary) Len() int {
	if d == nil {
		return 0
	}
	return len(d.values)
}

// Code returns the code of v and whether v is in the dictionary.
func (d *Dictionary) Code(v string) (int64, bool) {
	if d == nil {
		return 0, false
	}
	c, ok := d.codes[v]
	return c, ok
}

// Value decodes one code. Out-of-range codes decode to "".
func (d *Dictionary) Value(c int64) string {
	if d == nil || c < 0 || c >= int64(len(d.values)) {
		return ""
	}
	return d.values[c]
}

// EncodeColumn rewrites the named string column of every block in rel to
// its dictionary-coded representation: one relation-wide dictionary, a
// Codes vector per block, and the plain Strings vector dropped. It is a
// no-op on already-coded columns and errors on non-string columns.
func EncodeColumn(rel *Relation, name string) error {
	ci := rel.Schema.ColumnIndex(name)
	if ci < 0 {
		return fmt.Errorf("storage: relation %q has no column %q", rel.Name, name)
	}
	if rel.Schema.Columns[ci].Type != StringCol {
		return fmt.Errorf("storage: column %q of %q is %s, not string",
			name, rel.Name, rel.Schema.Columns[ci].Type)
	}
	for _, b := range rel.Blocks {
		if b.Vectors[ci].Codes != nil {
			return nil // already encoded
		}
	}
	var all []string
	for _, b := range rel.Blocks {
		all = append(all, b.Vectors[ci].Strings...)
	}
	d := NewDictionary(all)
	for _, b := range rel.Blocks {
		v := &b.Vectors[ci]
		codes := make([]int64, len(v.Strings))
		for i, s := range v.Strings {
			codes[i], _ = d.Code(s)
		}
		v.Codes = codes
		v.Dict = d
		v.Strings = nil
	}
	return nil
}

// EncodeStrings dictionary-encodes every plain string column of rel.
func EncodeStrings(rel *Relation) error {
	for _, c := range rel.Schema.Columns {
		if c.Type != StringCol {
			continue
		}
		if err := EncodeColumn(rel, c.Name); err != nil {
			return err
		}
	}
	return nil
}

// DecodeStrings materializes the string values of a (possibly coded)
// string vector — the round-trip check and the escape hatch for sinks
// that need real strings.
func DecodeStrings(v *ColumnVector) []string {
	if v.Strings != nil {
		out := make([]string, len(v.Strings))
		copy(out, v.Strings)
		return out
	}
	out := make([]string, len(v.Codes))
	for i, c := range v.Codes {
		out[i] = v.Dict.Value(c)
	}
	return out
}
