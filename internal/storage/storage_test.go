package storage

import (
	"testing"
	"testing/quick"
)

func TestSchemaDuplicateColumns(t *testing.T) {
	if _, err := NewSchema(Column{Name: "a", Type: Int64Col}, Column{Name: "a", Type: StringCol}); err == nil {
		t.Fatal("duplicate column names must be rejected")
	}
	if _, err := NewSchema(Column{Name: "", Type: Int64Col}); err == nil {
		t.Fatal("empty column name must be rejected")
	}
}

func TestSchemaColumnIndex(t *testing.T) {
	s := MustSchema(Column{Name: "a", Type: Int64Col}, Column{Name: "b", Type: Float64Col})
	if s.ColumnIndex("a") != 0 || s.ColumnIndex("b") != 1 {
		t.Fatal("wrong column indices")
	}
	if s.ColumnIndex("missing") != -1 {
		t.Fatal("missing column should return -1")
	}
	if s.NumColumns() != 2 {
		t.Fatal("wrong column count")
	}
}

func TestGeneratorBlockLayout(t *testing.T) {
	gen := NewGenerator(1)
	rel, err := gen.Relation("t", 1050, 500, []GenSpec{
		{Column: Column{Name: "id", Type: Int64Col}, Sequential: true},
		{Column: Column{Name: "v", Type: Float64Col}, MinFloat: 0, MaxFloat: 1},
		{Column: Column{Name: "s", Type: StringCol}, Cardinality: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumBlocks() != 3 {
		t.Fatalf("expected 3 blocks (500+500+50), got %d", rel.NumBlocks())
	}
	if rel.NumRows() != 1050 {
		t.Fatalf("expected 1050 rows, got %d", rel.NumRows())
	}
	if rel.Blocks[2].NumRows() != 50 {
		t.Fatalf("last block should hold 50 rows, got %d", rel.Blocks[2].NumRows())
	}
	if err := rel.Validate(); err != nil {
		t.Fatal(err)
	}
	// Sequential ids must be globally increasing across blocks.
	want := int64(0)
	for _, b := range rel.Blocks {
		for _, id := range b.Vectors[0].Ints {
			if id != want {
				t.Fatalf("id %d, want %d", id, want)
			}
			want++
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	build := func() *Relation {
		rel, err := NewGenerator(7).Relation("t", 300, 100, []GenSpec{
			{Column: Column{Name: "k", Type: Int64Col}, Cardinality: 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	a, b := build(), build()
	for bi := range a.Blocks {
		for i, v := range a.Blocks[bi].Vectors[0].Ints {
			if b.Blocks[bi].Vectors[0].Ints[i] != v {
				t.Fatal("generator not deterministic")
			}
		}
	}
}

func TestGeneratorBounds(t *testing.T) {
	f := func(seed int64, card uint8) bool {
		c := int(card%50) + 1
		rel, err := NewGenerator(seed).Relation("t", 200, 64, []GenSpec{
			{Column: Column{Name: "k", Type: Int64Col}, Cardinality: c},
		})
		if err != nil {
			return false
		}
		for _, b := range rel.Blocks {
			for _, v := range b.Vectors[0].Ints {
				if v < 0 || v >= int64(c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogRegisterAndLookup(t *testing.T) {
	cat := NewCatalog()
	rel, err := NewGenerator(1).Relation("orders", 100, 50, []GenSpec{
		{Column: Column{Name: "id", Type: Int64Col}, Sequential: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(rel); err != nil {
		t.Fatal(err)
	}
	got, ok := cat.Relation("orders")
	if !ok || got.Name != "orders" {
		t.Fatal("lookup failed")
	}
	if _, ok := cat.Relation("nope"); ok {
		t.Fatal("phantom relation")
	}
	if cat.Len() != 1 || len(cat.Names()) != 1 {
		t.Fatal("wrong catalog size")
	}
	if err := cat.Register(nil); err == nil {
		t.Fatal("nil relation must be rejected")
	}
}

func TestBlockValidate(t *testing.T) {
	schema := MustSchema(Column{Name: "a", Type: Int64Col})
	b := &Block{
		Header:  BlockHeader{BlockID: 0, Relation: "t", Rows: 2},
		Schema:  schema,
		Vectors: []ColumnVector{{Ints: []int64{1}}}, // wrong length
	}
	if err := b.Validate(); err == nil {
		t.Fatal("length mismatch must fail validation")
	}
	b.Vectors[0].Ints = []int64{1, 2}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestColumnTypeString(t *testing.T) {
	if Int64Col.String() != "int64" || Float64Col.String() != "float64" || StringCol.String() != "string" {
		t.Fatal("wrong type names")
	}
}
