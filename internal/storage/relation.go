package storage

import (
	"fmt"
	"sort"
	"sync"
)

// Relation is a named table stored as a set of blocks.
type Relation struct {
	Name   string
	Schema *Schema
	Blocks []*Block
}

// NumBlocks returns the number of storage blocks backing the relation.
func (r *Relation) NumBlocks() int { return len(r.Blocks) }

// NumRows returns the total tuple count across all blocks.
func (r *Relation) NumRows() int {
	n := 0
	for _, b := range r.Blocks {
		n += b.NumRows()
	}
	return n
}

// Validate checks every block in the relation.
func (r *Relation) Validate() error {
	for _, b := range r.Blocks {
		if b.Header.Relation != r.Name {
			return fmt.Errorf("storage: block %d belongs to %q, relation is %q",
				b.Header.BlockID, b.Header.Relation, r.Name)
		}
		if err := b.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Catalog maps relation names to relations. It is safe for concurrent
// readers once populated; registration is serialized by an internal lock.
type Catalog struct {
	mu        sync.RWMutex
	relations map[string]*Relation
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{relations: make(map[string]*Relation)}
}

// Register adds a relation to the catalog. Re-registering a name replaces
// the previous relation, which is what benchmark reloads at a new scale
// factor want.
func (c *Catalog) Register(r *Relation) error {
	if r == nil || r.Name == "" {
		return fmt.Errorf("storage: cannot register unnamed relation")
	}
	if err := r.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.relations[r.Name] = r
	return nil
}

// Relation looks up a relation by name.
func (c *Catalog) Relation(name string) (*Relation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.relations[name]
	return r, ok
}

// Names returns the sorted list of registered relation names.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.relations))
	for n := range c.relations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered relations.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.relations)
}
