package storage

import (
	"fmt"
	"math/rand"
)

// GenSpec describes how to synthesize one column of data.
type GenSpec struct {
	Column Column
	// MinInt/MaxInt bound integer columns (inclusive).
	MinInt, MaxInt int64
	// MinFloat/MaxFloat bound float columns.
	MinFloat, MaxFloat float64
	// Cardinality, when > 0, restricts string columns to that many
	// distinct values ("v0".."v{Cardinality-1}"), and integer columns to
	// a uniform draw in [0, Cardinality).
	Cardinality int
	// Sequential, when true, makes an integer column a 0..n-1 sequence —
	// a synthetic primary key.
	Sequential bool
	// DictEncode, when true on a string column, dictionary-encodes the
	// column after generation (see EncodeColumn): blocks carry codes
	// into a shared order-preserving dictionary instead of raw strings.
	DictEncode bool
}

// Generator synthesizes relations deterministically from a seed. It stands
// in for the TPC-H / SSB / JOB data generators (dbgen etc.), which we do
// not have offline; the scheduler only cares about block counts, join
// cardinalities, and selectivities, all of which the specs control.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a generator seeded deterministically.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Relation builds a relation of n rows split into blocks of blockRows
// tuples (the last block may be short).
func (g *Generator) Relation(name string, n, blockRows int, specs []GenSpec) (*Relation, error) {
	if n < 0 {
		return nil, fmt.Errorf("storage: negative row count %d", n)
	}
	if blockRows <= 0 {
		return nil, fmt.Errorf("storage: block size must be positive, got %d", blockRows)
	}
	cols := make([]Column, len(specs))
	for i, s := range specs {
		cols[i] = s.Column
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	rel := &Relation{Name: name, Schema: schema}
	for start, blockID := 0, 0; start < n || (n == 0 && blockID == 0); blockID++ {
		rows := blockRows
		if start+rows > n {
			rows = n - start
		}
		blk := &Block{
			Header:  BlockHeader{BlockID: blockID, Relation: name, Rows: rows},
			Schema:  schema,
			Vectors: make([]ColumnVector, len(specs)),
		}
		for ci, s := range specs {
			g.fill(&blk.Vectors[ci], s, start, rows)
		}
		rel.Blocks = append(rel.Blocks, blk)
		start += rows
		if n == 0 {
			break
		}
	}
	for _, s := range specs {
		if s.DictEncode && s.Column.Type == StringCol {
			if err := EncodeColumn(rel, s.Column.Name); err != nil {
				return nil, err
			}
		}
	}
	return rel, nil
}

func (g *Generator) fill(v *ColumnVector, s GenSpec, start, rows int) {
	switch s.Column.Type {
	case Int64Col:
		vals := make([]int64, rows)
		for i := range vals {
			switch {
			case s.Sequential:
				vals[i] = int64(start + i)
			case s.Cardinality > 0:
				vals[i] = int64(g.rng.Intn(s.Cardinality))
			default:
				lo, hi := s.MinInt, s.MaxInt
				if hi <= lo {
					hi = lo + 1
				}
				vals[i] = lo + g.rng.Int63n(hi-lo+1)
			}
		}
		v.Ints = vals
	case Float64Col:
		vals := make([]float64, rows)
		lo, hi := s.MinFloat, s.MaxFloat
		if hi <= lo {
			hi = lo + 1
		}
		for i := range vals {
			vals[i] = lo + g.rng.Float64()*(hi-lo)
		}
		v.Floats = vals
	case StringCol:
		vals := make([]string, rows)
		card := s.Cardinality
		if card <= 0 {
			card = 1000
		}
		for i := range vals {
			vals[i] = fmt.Sprintf("v%d", g.rng.Intn(card))
		}
		v.Strings = vals
	}
}
