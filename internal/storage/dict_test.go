package storage

import (
	"sort"
	"testing"
)

func TestDictionaryOrderPreserving(t *testing.T) {
	d := NewDictionary([]string{"pear", "apple", "pear", "zebra", "apple", "fig"})
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4 distinct values", d.Len())
	}
	// Codes must follow lexicographic order of values.
	want := []string{"apple", "fig", "pear", "zebra"}
	for i, v := range want {
		c, ok := d.Code(v)
		if !ok || c != int64(i) {
			t.Fatalf("Code(%q) = (%d, %v), want (%d, true)", v, c, ok, i)
		}
		if got := d.Value(int64(i)); got != v {
			t.Fatalf("Value(%d) = %q, want %q", i, got, v)
		}
	}
	if _, ok := d.Code("missing"); ok {
		t.Fatal("Code of absent value reported present")
	}
	if v := d.Value(99); v != "" {
		t.Fatalf("Value(99) = %q, want empty", v)
	}
	var nilDict *Dictionary
	if nilDict.Len() != 0 || nilDict.Value(0) != "" {
		t.Fatal("nil dictionary accessors must be safe")
	}
}

// TestDictRoundTrip is the check.sh dictionary smoke: generate a
// relation with a dict-encoded string column, verify blocks validate,
// codes decode back to the original strings, and code comparisons agree
// with string comparisons (the order-preserving property every integer
// kernel over codes relies on).
func TestDictRoundTrip(t *testing.T) {
	g := NewGenerator(7)
	plain, err := g.Relation("r_plain", 500, 128, []GenSpec{
		{Column: Column{Name: "id", Type: Int64Col}, Sequential: true},
		{Column: Column{Name: "tag", Type: StringCol}, Cardinality: 17},
	})
	if err != nil {
		t.Fatal(err)
	}
	g2 := NewGenerator(7)
	coded, err := g2.Relation("r_coded", 500, 128, []GenSpec{
		{Column: Column{Name: "id", Type: Int64Col}, Sequential: true},
		{Column: Column{Name: "tag", Type: StringCol}, Cardinality: 17, DictEncode: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ci := coded.Schema.ColumnIndex("tag")
	for bi, b := range coded.Blocks {
		if err := b.Validate(); err != nil {
			t.Fatalf("block %d: %v", bi, err)
		}
		v := &b.Vectors[ci]
		if v.Codes == nil || v.Dict == nil || v.Strings != nil {
			t.Fatalf("block %d tag column not dictionary-coded", bi)
		}
		got := DecodeStrings(v)
		want := plain.Blocks[bi].Vectors[ci].Strings
		if len(got) != len(want) {
			t.Fatalf("block %d decoded %d rows, want %d", bi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("block %d row %d decoded %q, want %q", bi, i, got[i], want[i])
			}
		}
		// Order preservation: code comparisons == string comparisons.
		for i := 1; i < len(v.Codes); i++ {
			cs := v.Codes[i-1] < v.Codes[i]
			ss := want[i-1] < want[i]
			if cs != ss {
				t.Fatalf("block %d rows %d,%d: code order %v, string order %v", bi, i-1, i, cs, ss)
			}
		}
	}
	// Sorting codes and sorting strings must agree end to end.
	v := &coded.Blocks[0].Vectors[ci]
	codes := append([]int64(nil), v.Codes...)
	strs := append([]string(nil), plain.Blocks[0].Vectors[ci].Strings...)
	sort.Slice(codes, func(a, b int) bool { return codes[a] < codes[b] })
	sort.Strings(strs)
	for i := range codes {
		if v.Dict.Value(codes[i]) != strs[i] {
			t.Fatalf("sorted position %d: decoded %q, want %q", i, v.Dict.Value(codes[i]), strs[i])
		}
	}
}

func TestValidateRejectsBadCodes(t *testing.T) {
	d := NewDictionary([]string{"a", "b"})
	schema := MustSchema(Column{Name: "tag", Type: StringCol})
	b := &Block{
		Header:  BlockHeader{Rows: 2},
		Schema:  schema,
		Vectors: []ColumnVector{{Codes: []int64{0, 5}, Dict: d}},
	}
	if err := b.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range dictionary code")
	}
	b.Vectors[0] = ColumnVector{Codes: []int64{0, 1}}
	if err := b.Validate(); err == nil {
		t.Fatal("Validate accepted codes without a dictionary")
	}
	b.Vectors[0] = ColumnVector{Codes: []int64{0, 1}, Dict: d}
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate rejected well-formed coded column: %v", err)
	}
}
