// Package storage implements the block-based columnar storage substrate
// that the scheduler's execution engine operates on. It mirrors the
// Quickstep storage model the paper assumes: every relation is a set of
// self-contained blocks, each holding a slice of the relation's rows in a
// column-store layout plus a metadata header.
package storage

import (
	"fmt"
)

// ColumnType enumerates the primitive column types supported by the engine.
type ColumnType int

const (
	// Int64Col holds 64-bit signed integers.
	Int64Col ColumnType = iota
	// Float64Col holds 64-bit floats.
	Float64Col
	// StringCol holds variable-length strings.
	StringCol
)

// String returns a human-readable name for the column type.
func (t ColumnType) String() string {
	switch t {
	case Int64Col:
		return "int64"
	case Float64Col:
		return "float64"
	case StringCol:
		return "string"
	default:
		return fmt.Sprintf("ColumnType(%d)", int(t))
	}
}

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type ColumnType
}

// Schema is the ordered list of columns of a relation.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema from the given columns. Column names must be
// unique within the schema.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("storage: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("storage: duplicate column %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. It is intended for
// statically-known schemas such as the benchmark catalogs.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// ColumnIndex returns the position of the named column, or -1 if absent.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// NumColumns returns the number of columns in the schema.
func (s *Schema) NumColumns() int { return len(s.Columns) }

// ColumnVector is one column's values within a single block. Exactly one
// of the value slices is non-nil, matching the column's declared type.
// A StringCol column has two representations: plain (Strings non-nil)
// or dictionary-coded (Codes non-nil with Dict pointing at the
// relation-wide order-preserving dictionary; see EncodeColumn).
type ColumnVector struct {
	Ints    []int64
	Floats  []float64
	Strings []string
	// Codes holds dictionary codes for a coded string column. Code
	// order equals string order (the dictionary is sorted), so integer
	// kernels over codes compute string semantics.
	Codes []int64
	// Dict decodes Codes; shared by every block of the relation.
	Dict *Dictionary
}

// Len returns the number of values stored in the vector.
func (v *ColumnVector) Len() int {
	switch {
	case v.Ints != nil:
		return len(v.Ints)
	case v.Floats != nil:
		return len(v.Floats)
	case v.Strings != nil:
		return len(v.Strings)
	case v.Codes != nil:
		return len(v.Codes)
	default:
		return 0
	}
}

// BlockHeader is the metadata header that makes each block a
// self-contained mini database, as in Quickstep.
type BlockHeader struct {
	// BlockID is unique within the owning relation.
	BlockID int
	// Relation is the owning relation's name.
	Relation string
	// Rows is the number of tuples stored in the block.
	Rows int
}

// Block is a column-store storage block: a header plus one vector per
// schema column, all of equal length.
type Block struct {
	Header  BlockHeader
	Schema  *Schema
	Vectors []ColumnVector
}

// NumRows returns the number of tuples in the block.
func (b *Block) NumRows() int { return b.Header.Rows }

// Validate checks internal consistency of the block: one vector per
// column, all vectors the declared length and the declared type.
func (b *Block) Validate() error {
	if b.Schema == nil {
		return fmt.Errorf("storage: block %d has nil schema", b.Header.BlockID)
	}
	if len(b.Vectors) != b.Schema.NumColumns() {
		return fmt.Errorf("storage: block %d has %d vectors for %d columns",
			b.Header.BlockID, len(b.Vectors), b.Schema.NumColumns())
	}
	for i, col := range b.Schema.Columns {
		v := &b.Vectors[i]
		if v.Len() != b.Header.Rows {
			return fmt.Errorf("storage: block %d column %q has %d rows, header says %d",
				b.Header.BlockID, col.Name, v.Len(), b.Header.Rows)
		}
		switch col.Type {
		case Int64Col:
			if v.Ints == nil && b.Header.Rows > 0 {
				return fmt.Errorf("storage: block %d column %q missing int vector", b.Header.BlockID, col.Name)
			}
		case Float64Col:
			if v.Floats == nil && b.Header.Rows > 0 {
				return fmt.Errorf("storage: block %d column %q missing float vector", b.Header.BlockID, col.Name)
			}
		case StringCol:
			switch {
			case v.Strings != nil:
				// plain representation
			case v.Codes != nil:
				if v.Dict == nil {
					return fmt.Errorf("storage: block %d column %q has codes but no dictionary",
						b.Header.BlockID, col.Name)
				}
				max := int64(v.Dict.Len())
				for _, c := range v.Codes {
					if c < 0 || c >= max {
						return fmt.Errorf("storage: block %d column %q has code %d outside dictionary of %d",
							b.Header.BlockID, col.Name, c, max)
					}
				}
			case b.Header.Rows > 0:
				return fmt.Errorf("storage: block %d column %q missing string vector", b.Header.BlockID, col.Name)
			}
		}
	}
	return nil
}
