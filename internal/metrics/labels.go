package metrics

import "strings"

// LabeledName composes an instrument name carrying Prometheus-style
// labels: LabeledName("fd_admitted", "tenant", "acme") returns
// `fd_admitted{tenant="acme"}`. The registry treats the result as an
// opaque key — each distinct label combination is its own instrument —
// while the Prometheus exposition layer (internal/obs) splits the base
// name from the label block so the series render as one metric family.
//
// kv is alternating key, value pairs; a trailing odd key is paired with
// the empty value. Values are escaped per the exposition format
// (backslash, double quote, newline). Callers on hot paths should build
// the name once and cache the returned instrument, as with any
// registry lookup.
func LabeledName(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.Grow(len(base) + 16*len(kv))
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		v := ""
		if i+1 < len(kv) {
			v = kv[i+1]
		}
		b.WriteString(escapeLabelValue(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// SplitLabeledName splits a LabeledName-composed instrument name into
// its base and label block (including braces). Names without a label
// block return labels == "".
func SplitLabeledName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 4)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
