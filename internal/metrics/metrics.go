// Package metrics is the engine's observability substrate: a lock-cheap
// registry of counters, gauges, and fixed-bucket latency histograms,
// plus a ring-buffer trace of typed scheduling events (see trace.go).
//
// The package is stdlib-only and designed around two constraints the
// scheduler imposes:
//
//  1. Nil safety. Every method works on a nil receiver as a no-op, so
//     instrumented code paths read `c.Inc()` unconditionally and the
//     disabled configuration (no *Registry supplied) costs one nil
//     check — no branching at call sites, no interface dispatch.
//  2. Race safety. Counters and gauges are single atomics; histogram
//     buckets are per-bucket atomics. Worker goroutines in the live
//     engine increment them concurrently with the event loop, which is
//     what `go test -race ./internal/engine/` exercises.
//
// Instruments are identified by name. Registration (Counter / Gauge /
// Histogram lookup) takes a mutex and is expected to happen once per
// run, with the returned pointer cached by the instrumented subsystem;
// the hot-path operations (Inc, Add, Set, Observe) never lock.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer instrument.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n to the counter. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float instrument (queue depth, pool size).
type Gauge struct {
	bits atomic.Uint64
}

// Set records the gauge's current value. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last value set (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= Bounds[i] (and > Bounds[i-1]); one implicit
// overflow bucket collects everything above the last bound.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary-search the first bound >= v; linear would do for the
	// typical ~10 buckets but this keeps wide histograms cheap too.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot captures the histogram's state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.Sum(),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// LatencyBuckets returns the default exponential bucket bounds used for
// work-order and query latencies, spanning sub-millisecond live work
// orders up to long simulated queries.
func LatencyBuckets() []float64 {
	out := make([]float64, 0, 16)
	for v := 1e-4; v <= 2e3; v *= 4 {
		out = append(out, v)
	}
	return out
}

// DefaultLabelCap is the per-family labeled-series cap a new registry
// starts with (see SetLabelCap).
const DefaultLabelCap = 512

// DroppedSeriesCounter is the counter incremented once per lookup that
// was refused by the label-cardinality cap.
const DroppedSeriesCounter = "metrics_labels_dropped"

// Registry holds named instruments. The zero value is not usable; use
// NewRegistry. A nil *Registry is a valid "metrics disabled" handle:
// its lookup methods return nil instruments whose operations no-op.
//
// Labeled instruments (names composed with LabeledName) are capped per
// metric family: once a base name has accumulated the cap's worth of
// distinct label sets, further new label sets return nil instruments
// (valid no-ops) and increment DroppedSeriesCounter — unbounded label
// values (tenant IDs, feature names) degrade to a counted drop instead
// of growing the registry without limit.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	labelCap   int
	families   map[string]int // base name -> distinct labeled series created
}

// NewRegistry returns an empty registry with the default label cap.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		labelCap:   DefaultLabelCap,
		families:   make(map[string]int),
	}
}

// SetLabelCap changes the per-family labeled-series cap. n <= 0 removes
// the cap. Already-created series are never evicted; the cap only
// refuses new label sets. No-op on a nil registry.
func (r *Registry) SetLabelCap(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.labelCap = n
	r.mu.Unlock()
}

// admitSeriesLocked charges a new instrument name against its family's
// label cap, reporting whether creation may proceed. Unlabeled names
// always pass. Caller holds r.mu.
func (r *Registry) admitSeriesLocked(name string) bool {
	base, labels := SplitLabeledName(name)
	if labels == "" {
		return true
	}
	if r.labelCap > 0 && r.families[base] >= r.labelCap {
		c, ok := r.counters[DroppedSeriesCounter]
		if !ok {
			c = &Counter{}
			r.counters[DroppedSeriesCounter] = c
		}
		c.Inc()
		return false
	}
	r.families[base]++
	return true
}

// Counter returns the named counter, creating it on first use.
// Returns nil (a valid no-op counter) on a nil registry, or when the
// name's label set was refused by the cardinality cap.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		if !r.admitSeriesLocked(name) {
			return nil
		}
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
// Returns nil (a valid no-op gauge) on a nil registry, or when the
// name's label set was refused by the cardinality cap.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		if !r.admitSeriesLocked(name) {
			return nil
		}
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (bounds are sorted and deduplicated;
// nil bounds select LatencyBuckets). Later lookups ignore bounds.
// Returns nil (a valid no-op histogram) on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if !r.admitSeriesLocked(name) {
			return nil
		}
		if bounds == nil {
			bounds = LatencyBuckets()
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		uniq := bs[:0]
		for i, b := range bs {
			if i == 0 || b != bs[i-1] {
				uniq = append(uniq, b)
			}
		}
		h = &Histogram{bounds: uniq, counts: make([]atomic.Int64, len(uniq)+1)}
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is the exported state of one histogram. Counts has
// one more entry than Bounds; the extra final entry is the overflow
// bucket (observations above the last bound).
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	// P50/P95/P99 are bucket-interpolated quantile estimates (see
	// Quantile), precomputed at snapshot time for the exports.
	P50 float64 `json:"p50,omitempty"`
	P95 float64 `json:"p95,omitempty"`
	P99 float64 `json:"p99,omitempty"`
}

// Mean returns the mean observation (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by locating the bucket
// the rank falls in and interpolating linearly within it — the same
// estimate Prometheus's histogram_quantile computes. The first bucket
// interpolates from 0 (or from its bound when that bound is negative);
// ranks landing in the overflow bucket return the last bound, the
// largest value the histogram can still attribute.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, c := range h.Counts {
		prev := float64(cum)
		cum += c
		if c == 0 || float64(cum) < rank {
			continue
		}
		if i >= len(h.Bounds) {
			// Overflow bucket: no finite upper bound to interpolate toward.
			if len(h.Bounds) == 0 {
				return 0
			}
			return h.Bounds[len(h.Bounds)-1]
		}
		upper := h.Bounds[i]
		lower := 0.0
		if i > 0 {
			lower = h.Bounds[i-1]
		} else if upper <= 0 {
			lower = upper
		}
		return lower + (upper-lower)*(rank-prev)/float64(c)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state. Returns an empty
// snapshot on a nil registry. Individual instrument reads are atomic;
// the snapshot as a whole is not (concurrent writers may land between
// reads), which is fine for its debugging/export purpose.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// JSON renders the snapshot as indented JSON.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Text renders the snapshot as a sorted human-readable dump. Safe on a
// nil receiver (returns the empty string).
func (s *Snapshot) Text() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter   %-44s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge     %-44s %g\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "histogram %-44s n=%d sum=%.6g mean=%.6g p50=%.6g p95=%.6g p99=%.6g\n",
			name, h.Count, h.Sum, h.Mean(), h.P50, h.P95, h.P99)
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			if i < len(h.Bounds) {
				fmt.Fprintf(&b, "            le %-12.4g %d\n", h.Bounds[i], c)
			} else {
				fmt.Fprintf(&b, "            le +inf        %d\n", c)
			}
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Export bundles a registry snapshot with a trace dump — the payload
// the CLIs print for -metrics.
type Export struct {
	Metrics *Snapshot `json:"metrics"`
	Trace   []Event   `json:"trace,omitempty"`
	// TraceTotal is how many events were ever recorded; when it exceeds
	// len(Trace) the ring buffer wrapped and older events were dropped.
	TraceTotal uint64 `json:"trace_total,omitempty"`
}

// NewExport snapshots reg and tr (either may be nil).
func NewExport(reg *Registry, tr *Tracer) *Export {
	return &Export{Metrics: reg.Snapshot(), Trace: tr.Events(), TraceTotal: tr.Total()}
}

// JSON renders the export as indented JSON.
func (e *Export) JSON() ([]byte, error) {
	return json.MarshalIndent(e, "", "  ")
}

// Text renders the export human-readably: the metric dump followed by
// the trace tail. Safe on a nil receiver and on a zero-value Export
// (nil Metrics snapshot).
func (e *Export) Text() string {
	if e == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(e.Metrics.Text())
	if len(e.Trace) > 0 {
		fmt.Fprintf(&b, "trace (%d of %d events):\n", len(e.Trace), e.TraceTotal)
		for _, ev := range e.Trace {
			b.WriteString("  ")
			b.WriteString(ev.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}
