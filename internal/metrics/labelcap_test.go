package metrics

import "testing"

func TestLabelCapDropsExcessSeries(t *testing.T) {
	reg := NewRegistry()
	reg.SetLabelCap(3)
	for i := 0; i < 3; i++ {
		c := reg.Counter(LabeledName("fam", "tenant", string(rune('a'+i))))
		if c == nil {
			t.Fatalf("series %d under cap was refused", i)
		}
		c.Inc()
	}
	// Fourth distinct label set: refused, counted, and nil-safe to use.
	d := reg.Counter(LabeledName("fam", "tenant", "overflow"))
	if d != nil {
		t.Fatal("series past the cap was created")
	}
	d.Inc() // no-op, must not panic
	if v := reg.Counter(DroppedSeriesCounter).Value(); v != 1 {
		t.Fatalf("dropped counter = %d, want 1", v)
	}
	// Existing series still resolve (lookup, not creation).
	if c := reg.Counter(LabeledName("fam", "tenant", "a")); c == nil || c.Value() != 1 {
		t.Fatal("existing series no longer resolves at cap")
	}
	// Repeat refusals keep counting.
	reg.Counter(LabeledName("fam", "tenant", "overflow2"))
	if v := reg.Counter(DroppedSeriesCounter).Value(); v != 2 {
		t.Fatalf("dropped counter = %d, want 2", v)
	}
}

func TestLabelCapIsPerFamily(t *testing.T) {
	reg := NewRegistry()
	reg.SetLabelCap(1)
	if reg.Counter(LabeledName("a", "k", "1")) == nil {
		t.Fatal("family a first series refused")
	}
	if reg.Gauge(LabeledName("b", "k", "1")) == nil {
		t.Fatal("family b first series refused (cap leaked across families)")
	}
	if reg.Counter(LabeledName("a", "k", "2")) != nil {
		t.Fatal("family a second series admitted past cap")
	}
}

func TestLabelCapIgnoresUnlabeledNames(t *testing.T) {
	reg := NewRegistry()
	reg.SetLabelCap(1)
	for _, name := range []string{"one", "two", "three"} {
		if reg.Counter(name) == nil {
			t.Fatalf("unlabeled counter %q refused", name)
		}
	}
	if reg.Counter(DroppedSeriesCounter).Value() != 0 {
		t.Fatal("unlabeled names charged against the label cap")
	}
}

func TestLabelCapAppliesToAllInstrumentKinds(t *testing.T) {
	reg := NewRegistry()
	reg.SetLabelCap(1)
	if reg.Histogram(LabeledName("h", "k", "1"), []float64{1, 2}) == nil {
		t.Fatal("first histogram refused")
	}
	if reg.Histogram(LabeledName("h", "k", "2"), []float64{1, 2}) != nil {
		t.Fatal("second histogram admitted past cap")
	}
	if reg.Gauge(LabeledName("g", "k", "1")) == nil {
		t.Fatal("first gauge refused")
	}
	if reg.Gauge(LabeledName("g", "k", "2")) != nil {
		t.Fatal("second gauge admitted past cap")
	}
	if v := reg.Counter(DroppedSeriesCounter).Value(); v != 2 {
		t.Fatalf("dropped counter = %d, want 2", v)
	}
}

func TestLabelCapUnlimited(t *testing.T) {
	reg := NewRegistry()
	reg.SetLabelCap(0)
	for i := 0; i < 2*DefaultLabelCap; i++ {
		if reg.Counter(LabeledName("fam", "i", string(rune(i)))) == nil {
			t.Fatalf("series %d refused with cap disabled", i)
		}
	}
	if reg.Counter(DroppedSeriesCounter).Value() != 0 {
		t.Fatal("drops counted with cap disabled")
	}
}
