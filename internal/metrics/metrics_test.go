package metrics

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	// Bucket i counts v <= Bounds[i] (and > Bounds[i-1]); the final
	// Counts entry is the overflow bucket.
	bounds := []float64{1, 10, 100}
	cases := []struct {
		name   string
		obs    []float64
		counts []int64
	}{
		{"empty", nil, []int64{0, 0, 0, 0}},
		{"below-first", []float64{0.5, -3}, []int64{2, 0, 0, 0}},
		{"on-boundary", []float64{1, 10, 100}, []int64{1, 1, 1, 0}},
		{"just-above-boundary", []float64{1.0001, 10.0001}, []int64{0, 1, 1, 0}},
		{"overflow", []float64{100.0001, 1e9}, []int64{0, 0, 0, 2}},
		{"mixed", []float64{0, 1, 2, 10, 11, 100, 101}, []int64{2, 2, 2, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewRegistry().Histogram("h", bounds)
			sum := 0.0
			for _, v := range tc.obs {
				h.Observe(v)
				sum += v
			}
			snap := h.snapshot()
			if !reflect.DeepEqual(snap.Counts, tc.counts) {
				t.Fatalf("counts = %v, want %v", snap.Counts, tc.counts)
			}
			if snap.Count != int64(len(tc.obs)) {
				t.Fatalf("count = %d, want %d", snap.Count, len(tc.obs))
			}
			if snap.Sum != sum {
				t.Fatalf("sum = %v, want %v", snap.Sum, sum)
			}
		})
	}
}

func TestHistogramBoundsNormalized(t *testing.T) {
	// Unsorted and duplicated bounds are normalized at creation.
	h := NewRegistry().Histogram("h", []float64{10, 1, 10, 5})
	snap := h.snapshot()
	want := []float64{1, 5, 10}
	if !reflect.DeepEqual(snap.Bounds, want) {
		t.Fatalf("bounds = %v, want %v", snap.Bounds, want)
	}
	if len(snap.Counts) != len(want)+1 {
		t.Fatalf("counts len = %d, want %d", len(snap.Counts), len(want)+1)
	}
}

func TestConcurrentIncrements(t *testing.T) {
	// Many goroutines hammering the same instruments must lose nothing.
	reg := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Lookup inside the goroutine: registration must be
			// concurrency-safe too, and must return the same instrument.
			c := reg.Counter("c")
			h := reg.Histogram("h", []float64{0.5})
			ga := reg.Gauge("g")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(1) // all land in the overflow bucket
				ga.Set(float64(i))
			}
		}()
	}
	wg.Wait()
	const want = goroutines * perG
	if got := reg.Counter("c").Value(); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	h := reg.Histogram("h", nil).snapshot()
	if h.Count != want || h.Counts[1] != want || h.Sum != want {
		t.Fatalf("histogram = %+v, want count=sum=%d in overflow", h, want)
	}
	if g := reg.Gauge("g").Value(); g != perG-1 {
		t.Fatalf("gauge = %v, want %v", g, perG-1)
	}
}

func TestTraceRingWraparound(t *testing.T) {
	cases := []struct {
		name     string
		capacity int
		record   int
		wantLen  int
		firstSeq uint64
	}{
		{"under-capacity", 8, 5, 5, 0},
		{"exactly-full", 8, 8, 8, 0},
		{"wrapped-once", 8, 11, 8, 3},
		{"wrapped-many", 4, 103, 4, 99},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := NewTracer(tc.capacity)
			for i := 0; i < tc.record; i++ {
				tr.Record(Event{Kind: EvDispatch, Time: float64(i), Query: i})
			}
			evs := tr.Events()
			if len(evs) != tc.wantLen {
				t.Fatalf("len = %d, want %d", len(evs), tc.wantLen)
			}
			if tr.Total() != uint64(tc.record) {
				t.Fatalf("total = %d, want %d", tr.Total(), tc.record)
			}
			for i, e := range evs {
				wantSeq := tc.firstSeq + uint64(i)
				if e.Seq != wantSeq || e.Query != int(wantSeq) {
					t.Fatalf("event %d = %+v, want seq %d (oldest-first order)", i, e, wantSeq)
				}
			}
		})
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(Event{Kind: EvComplete})
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 4000 {
		t.Fatalf("total = %d, want 4000", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 64 {
		t.Fatalf("retained %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("wo_dispatched").Add(42)
	reg.Gauge("queue_depth").Set(3.5)
	h := reg.Histogram("latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(7)
	tr := NewTracer(16)
	tr.Record(Event{Kind: EvDecision, Time: 1.5, Query: 2, Op: 4, Thread: -1, Value: 1, Label: "root"})
	tr.Record(Event{Kind: EvTrigger, Time: 2, Query: -1, Op: -1, Thread: -1, Label: "QueryArrival"})

	exp := NewExport(reg, tr)
	data, err := exp.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Export
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Metrics, exp.Metrics) {
		t.Fatalf("metrics round-trip mismatch:\n got %+v\nwant %+v", back.Metrics, exp.Metrics)
	}
	if !reflect.DeepEqual(back.Trace, exp.Trace) {
		t.Fatalf("trace round-trip mismatch:\n got %+v\nwant %+v", back.Trace, exp.Trace)
	}
	// The kind must serialize by name, not number.
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	trace := raw["trace"].([]any)
	if kind := trace[0].(map[string]any)["kind"]; kind != "decision" {
		t.Fatalf("kind serialized as %v, want \"decision\"", kind)
	}
}

func TestNilSafety(t *testing.T) {
	// Everything must be callable through nil handles — the disabled
	// configuration instrumented code relies on.
	var reg *Registry
	var tr *Tracer
	reg.Counter("x").Inc()
	reg.Counter("x").Add(5)
	reg.Gauge("y").Set(1)
	reg.Histogram("z", nil).Observe(1)
	tr.Record(Event{})
	if v := reg.Counter("x").Value(); v != 0 {
		t.Fatalf("nil counter value = %d", v)
	}
	if g := reg.Gauge("y").Value(); g != 0 {
		t.Fatalf("nil gauge value = %v", g)
	}
	if h := reg.Histogram("z", nil); h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram not empty")
	}
	if evs := tr.Events(); evs != nil {
		t.Fatalf("nil tracer events = %v", evs)
	}
	if tr.Total() != 0 {
		t.Fatal("nil tracer total != 0")
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	if _, err := NewExport(reg, tr).JSON(); err != nil {
		t.Fatal(err)
	}
	if s := snap.Text(); s != "" {
		t.Fatalf("nil registry text dump = %q", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	// 10 observations in (0,10], 10 in (10,20]: the interpolated p50 is
	// exactly the first bound, p95/p99 land 90%/98% into the second
	// bucket, and a rank past the last bound clamps to that bound.
	h := NewRegistry().Histogram("h", []float64{10, 20, 40})
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(15)
	}
	snap := h.snapshot()
	cases := []struct{ q, want float64 }{
		{0.50, 10},
		{0.95, 19},
		{0.99, 19.8},
		{0.25, 5},
		{1.00, 20},
		{0.00, 0},
	}
	for _, tc := range cases {
		if got := snap.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Snapshot precomputes the export quantiles.
	if snap.P50 != snap.Quantile(0.50) || snap.P95 != snap.Quantile(0.95) || snap.P99 != snap.Quantile(0.99) {
		t.Fatalf("precomputed quantiles %v/%v/%v disagree with Quantile", snap.P50, snap.P95, snap.P99)
	}
	// Overflow: every observation above the last bound clamps there.
	over := NewRegistry().Histogram("o", []float64{1})
	over.Observe(100)
	if got := over.snapshot().Quantile(0.99); got != 1 {
		t.Fatalf("overflow quantile = %v, want 1 (last bound)", got)
	}
	// Empty histogram.
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	// All-negative bounds: the first bucket must not interpolate from 0.
	neg := NewRegistry().Histogram("n", []float64{-10, -5})
	neg.Observe(-12)
	if got := neg.snapshot().Quantile(0.5); got != -10 {
		t.Fatalf("negative-bucket quantile = %v, want -10", got)
	}
}

func TestExportNilSafety(t *testing.T) {
	// Regression: the CLIs construct registries and tracers
	// conditionally, and exports can be built from (or unmarshalled
	// into) zero values — every render path must tolerate nils.
	var e *Export
	if s := e.Text(); s != "" {
		t.Fatalf("nil export text = %q", s)
	}
	zero := &Export{} // nil Metrics snapshot, nil trace
	if s := zero.Text(); s != "" {
		t.Fatalf("zero export text = %q", s)
	}
	if _, err := zero.JSON(); err != nil {
		t.Fatal(err)
	}
	var snap *Snapshot
	if s := snap.Text(); s != "" {
		t.Fatalf("nil snapshot text = %q", s)
	}
	if _, err := snap.JSON(); err != nil {
		t.Fatal(err)
	}
	exp := NewExport(nil, nil)
	if exp.Metrics == nil {
		t.Fatal("NewExport(nil, nil) must still produce an empty snapshot")
	}
	if len(exp.Trace) != 0 || exp.TraceTotal != 0 {
		t.Fatalf("NewExport(nil, nil) trace = %v (%d)", exp.Trace, exp.TraceTotal)
	}
	if _, err := exp.JSON(); err != nil {
		t.Fatal(err)
	}
	_ = exp.Text()
}

func TestSnapshotTextDump(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Inc()
	reg.Histogram("lat", []float64{1}).Observe(0.5)
	txt := reg.Snapshot().Text()
	for _, want := range []string{"counter", "a", "histogram", "lat", "n=1"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("text dump missing %q:\n%s", want, txt)
		}
	}
}
