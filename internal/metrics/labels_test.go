package metrics

import "testing"

func TestLabeledName(t *testing.T) {
	cases := []struct {
		base string
		kv   []string
		want string
	}{
		{"fd_admitted", nil, "fd_admitted"},
		{"fd_admitted", []string{"tenant", "acme"}, `fd_admitted{tenant="acme"}`},
		{"fd_latency", []string{"tenant", "acme", "class", "latency"}, `fd_latency{tenant="acme",class="latency"}`},
		{"fd_x", []string{"odd"}, `fd_x{odd=""}`},
		{"fd_x", []string{"k", `a"b\c`}, `fd_x{k="a\"b\\c"}`},
		{"fd_x", []string{"k", "a\nb"}, `fd_x{k="a\nb"}`},
	}
	for _, c := range cases {
		if got := LabeledName(c.base, c.kv...); got != c.want {
			t.Errorf("LabeledName(%q, %v) = %q, want %q", c.base, c.kv, got, c.want)
		}
	}
}

func TestSplitLabeledName(t *testing.T) {
	base, labels := SplitLabeledName(`fd_admitted{tenant="acme"}`)
	if base != "fd_admitted" || labels != `{tenant="acme"}` {
		t.Fatalf("split = (%q, %q)", base, labels)
	}
	base, labels = SplitLabeledName("plain")
	if base != "plain" || labels != "" {
		t.Fatalf("split plain = (%q, %q)", base, labels)
	}
}

// Labeled names are distinct registry keys: per-tenant series of one
// family are independent instruments.
func TestLabeledNamesAreDistinctInstruments(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter(LabeledName("fd_admitted", "tenant", "a"))
	b := reg.Counter(LabeledName("fd_admitted", "tenant", "b"))
	if a == b {
		t.Fatal("distinct label sets shared one counter")
	}
	a.Add(2)
	b.Inc()
	snap := reg.Snapshot()
	if snap.Counters[`fd_admitted{tenant="a"}`] != 2 || snap.Counters[`fd_admitted{tenant="b"}`] != 1 {
		t.Fatalf("snapshot = %v", snap.Counters)
	}
}
