package metrics

import (
	"encoding/json"
	"fmt"
	"sync"
)

// EventKind enumerates the typed trace events the scheduler substrate
// emits. They mirror the paper's execution model: work-order dispatch
// and completion (§5.1), query admission and finish, scheduler
// decisions (§5.3), trigger firings (§5.2 scheduling events), and
// cost-model updates (footnote 1 / §4.1 dynamic features).
type EventKind int

const (
	// EvDispatch: a work order was handed to a worker thread.
	EvDispatch EventKind = iota
	// EvComplete: a work order finished; Value is its duration.
	EvComplete
	// EvQueryAdmit: a query entered the system.
	EvQueryAdmit
	// EvQueryFinish: a query's sink finished; Value is its latency.
	EvQueryFinish
	// EvDecision: a scheduler decision activated an execution root;
	// Value is the pipeline depth.
	EvDecision
	// EvTrigger: a scheduling event fired the scheduler; Label names
	// the engine event kind.
	EvTrigger
	// EvCostUpdate: a completion was folded into the cost estimator;
	// Value is the signed duration prediction error.
	EvCostUpdate
	// EvReward: an online-learning checkpoint computed a reward signal;
	// Value is the mean step reward of the window.
	EvReward
	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"dispatch", "complete", "query_admit", "query_finish",
	"decision", "trigger", "cost_update", "reward",
}

// String names the event kind.
func (k EventKind) String() string {
	if k >= 0 && int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// MarshalJSON encodes the kind as its name, keeping trace exports
// readable.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a kind name (or a bare integer, for
// compatibility with hand-written payloads).
func (k *EventKind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		var n int
		if err2 := json.Unmarshal(data, &n); err2 != nil {
			return err
		}
		*k = EventKind(n)
		return nil
	}
	for i, s := range eventKindNames {
		if s == name {
			*k = EventKind(i)
			return nil
		}
	}
	return fmt.Errorf("metrics: unknown event kind %q", name)
}

// Event is one typed trace record. Time is engine time — virtual
// seconds in the simulator, wall seconds in the live engine — so
// identical simulator runs produce identical traces.
type Event struct {
	// Seq is the record's global sequence number, assigned at Record.
	Seq uint64 `json:"seq"`
	// Kind types the event.
	Kind EventKind `json:"kind"`
	// Time is the engine time of the event.
	Time float64 `json:"t"`
	// Query is the subject query ID (-1 when not query-scoped).
	Query int `json:"query"`
	// Op is the subject operator ID (-1 when not operator-scoped).
	Op int `json:"op"`
	// Thread is the worker thread ID (-1 when not thread-scoped).
	Thread int `json:"thread"`
	// Value carries the kind-specific measurement (duration, error,
	// pipeline depth, reward).
	Value float64 `json:"value"`
	// Label carries kind-specific context (operator type, trigger name,
	// scheduler name).
	Label string `json:"label,omitempty"`
}

// String renders the event for the text dump.
func (e Event) String() string {
	s := fmt.Sprintf("#%-6d t=%-12.6g %-12s", e.Seq, e.Time, e.Kind)
	if e.Query >= 0 {
		s += fmt.Sprintf(" q%d", e.Query)
	}
	if e.Op >= 0 {
		s += fmt.Sprintf(" op%d", e.Op)
	}
	if e.Thread >= 0 {
		s += fmt.Sprintf(" thr%d", e.Thread)
	}
	if e.Label != "" {
		s += " " + e.Label
	}
	s += fmt.Sprintf(" value=%.6g", e.Value)
	return s
}

// Tracer is a bounded ring buffer of trace events. Recording is
// mutex-guarded (one short critical section per event); when the buffer
// fills, new events overwrite the oldest. A nil *Tracer is a valid
// "tracing disabled" handle: Record no-ops and Events returns nil.
type Tracer struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
	seq  uint64
}

// DefaultTraceCapacity is the ring size used when none is given.
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer retaining the last capacity events
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Record appends one event, assigning its sequence number. No-op on a
// nil receiver.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e.Seq = t.seq
	t.seq++
	if !t.full {
		t.buf = append(t.buf, e)
		if len(t.buf) == cap(t.buf) {
			t.full = true
		}
	} else {
		t.buf[t.next] = e
		t.next = (t.next + 1) % len(t.buf)
	}
	t.mu.Unlock()
}

// Events returns the retained events oldest-first. Nil on a nil
// receiver.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.full {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Total returns how many events were ever recorded (0 on nil), which
// exceeds len(Events()) once the ring has wrapped.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}
