package serving

import (
	"fmt"

	"repro/internal/engine"
)

// ShadowEvaluator drives live traffic with the active policy while
// replaying every scheduling event through a candidate policy whose
// decisions are computed but never applied. It implements
// engine.Scheduler; wrap it around the active policy for one run and
// read the Report afterwards.
//
// OnEvent is pure with respect to the engine state (schedulers only
// read *engine.State), so invoking the candidate on the same (state,
// event) pair is side-effect-free — the only cost is the candidate's
// forward pass.
type ShadowEvaluator struct {
	active    engine.Scheduler
	candidate engine.Scheduler

	events         int
	matchedEvents  int
	decisions      int
	matchedDecs    int
	candidateExtra int
}

// NewShadowEvaluator pairs an active (applied) and candidate (shadowed)
// policy. Both should be deterministic (greedy) for agreement to be
// meaningful.
func NewShadowEvaluator(active, candidate engine.Scheduler) *ShadowEvaluator {
	return &ShadowEvaluator{active: active, candidate: candidate}
}

// Name implements engine.Scheduler.
func (s *ShadowEvaluator) Name() string {
	return s.active.Name() + "+shadow(" + s.candidate.Name() + ")"
}

// OnEvent implements engine.Scheduler: the active policy's decisions
// are returned (applied); the candidate's are computed against the same
// state and scored for agreement.
func (s *ShadowEvaluator) OnEvent(st *engine.State, ev engine.Event) []engine.Decision {
	applied := s.active.OnEvent(st, ev)
	shadow := s.candidate.OnEvent(st, ev)

	s.events++
	if decisionsEqual(applied, shadow) {
		s.matchedEvents++
	}
	s.decisions += len(applied)
	if len(shadow) > len(applied) {
		s.candidateExtra += len(shadow) - len(applied)
	}
	n := len(applied)
	if len(shadow) < n {
		n = len(shadow)
	}
	for i := 0; i < n; i++ {
		if applied[i] == shadow[i] {
			s.matchedDecs++
		}
	}
	return applied
}

// QueryCompleted forwards lifecycle callbacks to the active policy
// (the candidate is frozen during shadowing — it must not learn from
// rewards earned by someone else's decisions).
func (s *ShadowEvaluator) QueryCompleted(queryID int, arrival, completion float64) {
	if o, ok := s.active.(engine.QueryObserver); ok {
		o.QueryCompleted(queryID, arrival, completion)
	}
}

// ShadowReport summarizes one shadowed run.
type ShadowReport struct {
	// Events is the number of scheduling events observed.
	Events int
	// EventAgreement is the fraction of events where the candidate's
	// full decision list matched the active policy's exactly.
	EventAgreement float64
	// DecisionAgreement is the fraction of the active policy's
	// decisions the candidate reproduced position-for-position.
	DecisionAgreement float64
}

// Report returns the agreement scores accumulated so far.
func (s *ShadowEvaluator) Report() ShadowReport {
	r := ShadowReport{Events: s.events}
	if s.events > 0 {
		r.EventAgreement = float64(s.matchedEvents) / float64(s.events)
	}
	total := s.decisions + s.candidateExtra
	if total > 0 {
		r.DecisionAgreement = float64(s.matchedDecs) / float64(total)
	}
	return r
}

// decisionsEqual compares two decision lists field-for-field.
func decisionsEqual(a, b []engine.Decision) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EvalConfig configures a simulated evaluation run: the fixed workload
// and simulator settings both contenders are scored under.
type EvalConfig struct {
	// Arrivals is the evaluation workload; each run gets its own deep
	// copy, so repeated evaluations never share plan state.
	Arrivals []engine.Arrival
	// Threads, Seed, NoiseFrac mirror engine.SimConfig.
	Threads   int
	Seed      int64
	NoiseFrac float64
	// MaxTime aborts a runaway candidate (0 = off). A candidate that
	// cannot finish the workload scores -Inf and can never promote.
	MaxTime float64
}

// SimScore runs one scheduler over the evaluation workload and returns
// its score: the negated mean query duration, so higher is better. The
// simulation is deterministic for a fixed config, making score
// comparisons across candidates meaningful.
func SimScore(s engine.Scheduler, cfg EvalConfig) (float64, error) {
	if len(cfg.Arrivals) == 0 {
		return 0, fmt.Errorf("serving: EvalConfig.Arrivals is empty")
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 8
	}
	sim := engine.NewSim(engine.SimConfig{
		Threads: cfg.Threads, Seed: cfg.Seed, NoiseFrac: cfg.NoiseFrac, MaxTime: cfg.MaxTime,
	})
	res, err := sim.Run(s, engine.CloneArrivals(cfg.Arrivals))
	if err != nil {
		return 0, err
	}
	if len(res.Durations) < len(cfg.Arrivals) {
		return 0, fmt.Errorf("serving: completed %d of %d queries", len(res.Durations), len(cfg.Arrivals))
	}
	return -res.AvgDuration(), nil
}

// ShadowRun executes the evaluation workload with active applied and
// candidate in shadow, returning the agreement report and the active
// policy's score.
func ShadowRun(active, candidate engine.Scheduler, cfg EvalConfig) (ShadowReport, float64, error) {
	if len(cfg.Arrivals) == 0 {
		return ShadowReport{}, 0, fmt.Errorf("serving: EvalConfig.Arrivals is empty")
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 8
	}
	sh := NewShadowEvaluator(active, candidate)
	sim := engine.NewSim(engine.SimConfig{
		Threads: cfg.Threads, Seed: cfg.Seed, NoiseFrac: cfg.NoiseFrac, MaxTime: cfg.MaxTime,
	})
	res, err := sim.Run(sh, engine.CloneArrivals(cfg.Arrivals))
	if err != nil {
		return ShadowReport{}, 0, err
	}
	return sh.Report(), -res.AvgDuration(), nil
}
