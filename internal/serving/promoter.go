package serving

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/policystore"
)

// PromoterConfig wires a Promoter to its store, serving slot, and
// evaluation harness.
type PromoterConfig struct {
	// Store is the versioned checkpoint store candidates arrive in.
	Store *policystore.Store
	// Hot is the serving slot promotion installs into.
	Hot *HotAgent
	// Load builds a ready-to-serve scheduler from a checkpoint (e.g. a
	// greedy lsched agent with the checkpoint's params restored).
	Load func(ck *policystore.Checkpoint) (engine.Scheduler, error)
	// Eval is the fixed evaluation workload both contenders are scored
	// under (shadow agreement + simulated score).
	Eval EvalConfig
	// Threshold is how much the candidate's score must exceed the
	// active policy's score to promote (scores are negated mean
	// durations, so 0 demands "at least as good", positive values
	// demand a margin).
	Threshold float64
}

// TickResult reports what one promotion check did.
type TickResult struct {
	// Checked is the candidate version examined (0 = nothing new).
	Checked int
	// Promoted and RolledBack report the outcome for Checked.
	Promoted   bool
	RolledBack bool
	// CandidateScore and ActiveScore are the simulated scores (higher
	// is better; only set when an evaluation ran).
	CandidateScore float64
	ActiveScore    float64
	// Shadow is the agreement report from the side-by-side replay.
	Shadow ShadowReport
}

// Promoter watches the store for new policy versions and promotes a
// candidate into the serving slot only when it beats the active policy
// by the configured threshold — otherwise the trial promotion is rolled
// back and the version is remembered as rejected.
//
// The guarded sequence for each new version:
//
//  1. Trial-promote it in the store (CURRENT records the attempt; the
//     serving slot is untouched).
//  2. Score the candidate on the evaluation workload, and replay it in
//     shadow against a fresh copy of the active version for agreement.
//  3. Pass → install into the HotAgent (live traffic switches at the
//     next event). Fail → store.Rollback, counters bump, the serving
//     policy never changed.
//
// Evaluation always runs store-loaded copies, never the live serving
// scheduler object, so a Promoter goroutine cannot race the engine's
// OnEvent calls on agent-internal scratch state.
type Promoter struct {
	cfg          PromoterConfig
	lastRejected int

	mChecks     *metrics.Counter
	mPromotions *metrics.Counter
	mRollbacks  *metrics.Counter
}

// NewPromoter validates the wiring and returns a promoter.
func NewPromoter(cfg PromoterConfig) (*Promoter, error) {
	if cfg.Store == nil || cfg.Hot == nil || cfg.Load == nil {
		return nil, fmt.Errorf("serving: PromoterConfig needs Store, Hot, and Load")
	}
	if len(cfg.Eval.Arrivals) == 0 {
		return nil, fmt.Errorf("serving: PromoterConfig.Eval.Arrivals is empty")
	}
	return &Promoter{cfg: cfg}, nil
}

// Instrument attaches promotion counters to a registry (nil no-op).
func (p *Promoter) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	p.mChecks = reg.Counter("policy_promotion_checks_total")
	p.mPromotions = reg.Counter("policy_promotions_total")
	p.mRollbacks = reg.Counter("policy_rollbacks_total")
}

// Tick runs one promotion check: if the store's newest loadable version
// is newer than what is serving (and not already rejected), it is
// evaluated and either promoted+installed or rolled back.
func (p *Promoter) Tick() (TickResult, error) {
	var res TickResult
	latest, err := p.cfg.Store.Latest()
	if err != nil {
		return res, nil // empty store: nothing to do yet
	}
	v := latest.Manifest.Version
	if v == p.lastRejected || v == p.cfg.Hot.ActiveVersion() {
		return res, nil
	}
	res.Checked = v
	p.mChecks.Inc()
	cand, err := p.cfg.Load(latest)
	if err != nil {
		p.lastRejected = v
		return res, fmt.Errorf("serving: load candidate v%d: %w", v, err)
	}

	activeV, err := p.cfg.Store.Active()
	if err != nil {
		return res, err
	}
	if activeV == 0 || activeV == v {
		// Bootstrap (no promoted policy yet) or a version promoted
		// out-of-band (policyctl): install without a contest.
		if err := p.cfg.Store.Promote(v); err != nil {
			return res, err
		}
		p.cfg.Hot.Install(cand, v)
		p.mPromotions.Inc()
		res.Promoted = true
		return res, nil
	}

	activeCk, err := p.cfg.Store.Get(activeV)
	if err != nil {
		return res, fmt.Errorf("serving: load active v%d: %w", activeV, err)
	}
	activeSched, err := p.cfg.Load(activeCk)
	if err != nil {
		return res, fmt.Errorf("serving: load active v%d: %w", activeV, err)
	}

	// Trial promotion: CURRENT records the attempt before evaluation,
	// so the rollback path is the real store operation, not a no-op.
	if err := p.cfg.Store.Promote(v); err != nil {
		return res, err
	}
	candScore, candErr := SimScore(cand, p.cfg.Eval)
	rep, activeScore, shadowErr := ShadowRun(activeSched, cand, p.cfg.Eval)
	res.CandidateScore, res.ActiveScore, res.Shadow = candScore, activeScore, rep

	pass := candErr == nil && shadowErr == nil && candScore >= activeScore+p.cfg.Threshold
	p.cfg.Store.UpdateMetrics(v, map[string]float64{ //nolint:errcheck — advisory metadata
		"sim_score":                 candScore,
		"sim_score_active":          activeScore,
		"shadow_event_agreement":    rep.EventAgreement,
		"shadow_decision_agreement": rep.DecisionAgreement,
	})
	if !pass {
		if _, err := p.cfg.Store.Rollback(); err != nil {
			return res, fmt.Errorf("serving: rollback after failed candidate v%d: %w", v, err)
		}
		p.mRollbacks.Inc()
		p.lastRejected = v
		res.RolledBack = true
		if candErr != nil {
			return res, nil // candidate could not finish the workload: rejected, not fatal
		}
		return res, shadowErr
	}
	p.cfg.Hot.Install(cand, v)
	p.mPromotions.Inc()
	res.Promoted = true
	return res, nil
}

// Run ticks until stop closes, once per interval. Tick errors are
// reported through onErr when non-nil and otherwise dropped — a broken
// candidate must not kill the serving loop.
func (p *Promoter) Run(stop <-chan struct{}, interval time.Duration, onErr func(error)) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if _, err := p.Tick(); err != nil && onErr != nil {
				onErr(err)
			}
		}
	}
}
