package serving

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/heuristics"
	"repro/internal/lsched"
	"repro/internal/metrics"
	"repro/internal/policystore"
	"repro/internal/workload"
)

func testArrivals(t testing.TB, n int, seed int64) []engine.Arrival {
	t.Helper()
	pool, err := workload.NewPool(workload.BenchSSB, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	return workload.Streaming(pool.Train, n, 0.5, rng)
}

func testStore(t *testing.T) *policystore.Store {
	t.Helper()
	s, err := policystore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// recorder wraps a scheduler and deep-copies every decision list (the
// lsched fast path recycles the returned slice's backing array between
// events, so comparisons must copy).
type recorder struct {
	inner engine.Scheduler
	// onEvent fires after each event with its index (1-based count so
	// far), before returning the decisions.
	onEvent func(n int)
	n       int
	log     [][]engine.Decision
}

func (r *recorder) Name() string { return r.inner.Name() }

func (r *recorder) OnEvent(st *engine.State, ev engine.Event) []engine.Decision {
	ds := r.inner.OnEvent(st, ev)
	r.log = append(r.log, append([]engine.Decision(nil), ds...))
	r.n++
	if r.onEvent != nil {
		r.onEvent(r.n)
	}
	return ds
}

// greedyAgent builds an untrained, greedy LSched agent.
func greedyAgent(seed int64) *lsched.Agent {
	a := lsched.New(lsched.DefaultOptions(seed))
	a.SetGreedy(true)
	return a
}

// TestHotSwapMidStreamBitIdentical is the tentpole acceptance test: a
// Sim run hot-swaps to a different policy mid-stream, without pausing
// dispatch, and its decisions before the swap point are bit-identical
// to an unswapped run's.
func TestHotSwapMidStreamBitIdentical(t *testing.T) {
	const swapAt = 12
	arrivals := testArrivals(t, 8, 11)

	// Baseline: policy A serves the whole run.
	base := &recorder{inner: NewHotAgent(greedyAgent(1), 1)}
	simA := engine.NewSim(engine.SimConfig{Threads: 6, Seed: 11, NoiseFrac: 0.1})
	resA, err := simA.Run(base, engine.CloneArrivals(arrivals))
	if err != nil {
		t.Fatal(err)
	}
	if len(resA.Durations) != len(arrivals) {
		t.Fatalf("baseline run completed %d of %d queries", len(resA.Durations), len(arrivals))
	}

	// Swapped: identical run, but policy B is installed after event 12.
	hot := NewHotAgent(greedyAgent(1), 1)
	reg := metrics.NewRegistry()
	hot.Instrument(reg)
	swapped := &recorder{inner: hot}
	swapped.onEvent = func(n int) {
		if n == swapAt {
			hot.Install(greedyAgent(2), 2)
		}
	}
	simB := engine.NewSim(engine.SimConfig{Threads: 6, Seed: 11, NoiseFrac: 0.1})
	resB, err := simB.Run(swapped, engine.CloneArrivals(arrivals))
	if err != nil {
		t.Fatal(err)
	}

	// Dispatch never paused: the swapped run still completes everything.
	if len(resB.Durations) != len(arrivals) {
		t.Fatalf("swapped run completed %d of %d queries", len(resB.Durations), len(arrivals))
	}
	if len(base.log) < swapAt+1 || len(swapped.log) < swapAt+1 {
		t.Fatalf("too few events to compare (base %d, swapped %d); enlarge the workload", len(base.log), len(swapped.log))
	}
	// Bit-identical decisions before the swap point.
	for i := 0; i < swapAt; i++ {
		if !reflect.DeepEqual(base.log[i], swapped.log[i]) {
			t.Fatalf("pre-swap event %d diverged:\n base    %v\n swapped %v", i, base.log[i], swapped.log[i])
		}
	}
	// The swap took effect: the runs diverge somewhere after it.
	diverged := len(base.log) != len(swapped.log)
	for i := swapAt; !diverged && i < len(base.log) && i < len(swapped.log); i++ {
		diverged = !reflect.DeepEqual(base.log[i], swapped.log[i])
	}
	if !diverged {
		t.Fatal("runs identical after the swap; hot swap had no effect")
	}
	if hot.Swaps() != 1 || hot.ActiveVersion() != 2 {
		t.Fatalf("swaps=%d active=%d, want 1/2", hot.Swaps(), hot.ActiveVersion())
	}
	if got := reg.Counter("policy_swaps_total").Value(); got != 1 {
		t.Fatalf("policy_swaps_total = %d, want 1", got)
	}
}

// TestHotSwapConcurrentInstall swaps policies from a separate goroutine
// while the engine runs, under -race: the serving path must be safe
// against asynchronous installs.
func TestHotSwapConcurrentInstall(t *testing.T) {
	arrivals := testArrivals(t, 10, 13)
	hot := NewHotAgent(greedyAgent(1), 1)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		seed := int64(2)
		for {
			select {
			case <-stop:
				return
			default:
				hot.Install(greedyAgent(seed), int(seed))
				seed++
			}
		}
	}()
	sim := engine.NewSim(engine.SimConfig{Threads: 6, Seed: 13, NoiseFrac: 0.1})
	res, err := sim.Run(hot, engine.CloneArrivals(arrivals))
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != len(arrivals) {
		t.Fatalf("completed %d of %d under concurrent swaps", len(res.Durations), len(arrivals))
	}
	if hot.Swaps() == 0 {
		t.Fatal("no swaps happened during the run")
	}
}

func TestShadowEvaluatorAgreement(t *testing.T) {
	arrivals := testArrivals(t, 6, 17)
	cfg := EvalConfig{Arrivals: arrivals, Threads: 6, Seed: 17, NoiseFrac: 0.1}

	// Identical policies agree everywhere.
	rep, _, err := ShadowRun(heuristics.Fair{}, heuristics.Fair{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events == 0 || rep.EventAgreement != 1 || rep.DecisionAgreement != 1 {
		t.Fatalf("self-shadow agreement: %+v, want 1.0 across %d events", rep, rep.Events)
	}

	// Different policies must disagree somewhere, and shadowing must not
	// change what the active policy does (same result as unshadowed).
	rep2, score, err := ShadowRun(heuristics.Fair{}, heuristics.FIFO{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.EventAgreement >= 1 {
		t.Fatalf("Fair vs FIFO event agreement = %v, want < 1", rep2.EventAgreement)
	}
	direct, err := SimScore(heuristics.Fair{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if score != direct {
		t.Fatalf("shadowed active score %v != unshadowed %v; shadow replay perturbed the run", score, direct)
	}
}

// trickle is a deliberately poor policy: it keeps queries alive but
// serializes everything onto one thread with no pipelining.
type trickle struct{}

func (trickle) Name() string { return "trickle" }
func (trickle) OnEvent(st *engine.State, _ engine.Event) []engine.Decision {
	var ds []engine.Decision
	for _, q := range st.Queries {
		roots := q.SchedulableRoots()
		if len(roots) > 0 {
			ds = append(ds, engine.Decision{QueryID: q.ID, RootOpID: roots[0].ID})
		}
		ds = append(ds, engine.Decision{QueryID: q.ID, RootOpID: -1, Threads: 1})
	}
	return ds
}

// testLoader maps tiny text blobs to heuristic schedulers, so promoter
// tests control candidate quality exactly.
func testLoader(ck *policystore.Checkpoint) (engine.Scheduler, error) {
	switch string(ck.Params) {
	case "sjf":
		return heuristics.SJF{}, nil
	case "fair":
		return heuristics.Fair{}, nil
	case "trickle":
		return trickle{}, nil
	}
	return nil, nil
}

func TestPromoterGuardedPromotionAndRollback(t *testing.T) {
	store := testStore(t)
	arrivals := testArrivals(t, 6, 19)
	hot := NewHotAgent(heuristics.Fair{}, 0)
	reg := metrics.NewRegistry()
	hot.Instrument(reg)

	p, err := NewPromoter(PromoterConfig{
		Store: store,
		Hot:   hot,
		Load:  testLoader,
		Eval:  EvalConfig{Arrivals: arrivals, Threads: 6, Seed: 19, NoiseFrac: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Instrument(reg)

	// Empty store: a tick is a no-op.
	if res, err := p.Tick(); err != nil || res.Checked != 0 {
		t.Fatalf("tick on empty store: %+v, %v", res, err)
	}

	// Bootstrap: the first version promotes without a contest.
	v1, err := store.Put(policystore.PutOptions{Params: []byte("fair")})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Tick()
	if err != nil || !res.Promoted {
		t.Fatalf("bootstrap tick: %+v, %v", res, err)
	}
	if a, _ := store.Active(); a != v1 {
		t.Fatalf("active = %d, want %d", a, v1)
	}
	if hot.ActiveVersion() != v1 {
		t.Fatalf("serving version = %d, want %d", hot.ActiveVersion(), v1)
	}

	// A better candidate (SJF beats Fair on avg duration) promotes.
	v2, err := store.Put(policystore.PutOptions{Params: []byte("sjf"), Parent: v1})
	if err != nil {
		t.Fatal(err)
	}
	res, err = p.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted || res.CandidateScore < res.ActiveScore {
		t.Fatalf("better candidate not promoted: %+v", res)
	}
	if a, _ := store.Active(); a != v2 {
		t.Fatalf("active = %d, want %d", a, v2)
	}
	if hot.ActiveVersion() != v2 {
		t.Fatalf("serving version = %d, want %d", hot.ActiveVersion(), v2)
	}

	// A worse candidate is trial-promoted, fails its shadow evaluation,
	// and is rolled back — the serving policy never changes.
	v3, err := store.Put(policystore.PutOptions{Params: []byte("trickle"), Parent: v2})
	if err != nil {
		t.Fatal(err)
	}
	res, err = p.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if !res.RolledBack || res.Promoted {
		t.Fatalf("worse candidate not rolled back: %+v", res)
	}
	if a, _ := store.Active(); a != v2 {
		t.Fatalf("active after rollback = %d, want %d", a, v2)
	}
	if hot.ActiveVersion() != v2 {
		t.Fatalf("serving version after rollback = %d, want %d", hot.ActiveVersion(), v2)
	}
	// The rejected version's manifest records why.
	ck, err := store.Get(v3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ck.Manifest.Metrics["sim_score"]; !ok {
		t.Fatalf("rejected manifest missing evaluation metrics: %+v", ck.Manifest.Metrics)
	}

	// The rejected version is not re-evaluated on the next tick.
	if res, err := p.Tick(); err != nil || res.Checked != 0 {
		t.Fatalf("rejected candidate re-checked: %+v, %v", res, err)
	}

	if got := reg.Counter("policy_promotions_total").Value(); got != 2 {
		t.Fatalf("policy_promotions_total = %d, want 2", got)
	}
	if got := reg.Counter("policy_rollbacks_total").Value(); got != 1 {
		t.Fatalf("policy_rollbacks_total = %d, want 1", got)
	}
	if got := hot.Swaps(); got != 2 {
		t.Fatalf("hot swaps = %d, want 2 (bootstrap + promotion)", got)
	}
}

// TestCrashRecoveryRoundTrip is the restart story: an online agent
// checkpoints into the store while serving; a fresh process restores
// the latest version and gets bit-identical params, the same experience
// buffer, and (via the Sim determinism harness) an identical schedule.
func TestCrashRecoveryRoundTrip(t *testing.T) {
	store := testStore(t)
	opts := lsched.DefaultOptions(5)
	agent := lsched.New(opts)
	online := lsched.NewOnlineAgent(agent, lsched.OnlineConfig{CheckpointEvery: 2, LR: 1e-3, W1: 1}, nil)
	online.PersistTo(store, 0)

	arrivals := testArrivals(t, 8, 23)
	sim := engine.NewSim(engine.SimConfig{Threads: 6, Seed: 23, NoiseFrac: 0.1})
	sim.SetObserver(online)
	if _, err := sim.Run(online, engine.CloneArrivals(arrivals)); err != nil {
		t.Fatal(err)
	}
	if err := online.PersistErr(); err != nil {
		t.Fatal(err)
	}
	if online.LastPersisted() == 0 {
		t.Fatal("no checkpoint persisted during the run")
	}

	// "Restart": a fresh agent restores the latest stored version.
	ck, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Manifest.Version != online.LastPersisted() {
		t.Fatalf("latest = v%d, want v%d", ck.Manifest.Version, online.LastPersisted())
	}
	restored := lsched.New(opts)
	if err := restored.Restore(ck.Params); err != nil {
		t.Fatal(err)
	}

	// Params restore bit-identically (online updates only happen at
	// checkpoints, and every checkpoint persisted).
	want, err := agent.Params().Serialize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Params().Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("restored params differ from the live agent's")
	}

	// The experience buffer round-trips exactly.
	rexp := lsched.NewExperienceManager(1024)
	if err := rexp.Load(ck.Experience); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rexp.All(), online.Experiences().All()) {
		t.Fatalf("experiences differ:\n live     %+v\n restored %+v",
			online.Experiences().All(), rexp.All())
	}

	// Determinism harness: both agents, greedy, produce bit-identical
	// schedules on the same workload.
	agent.SetGreedy(true)
	restored.SetGreedy(true)
	eval := testArrivals(t, 6, 29)
	s1 := engine.NewSim(engine.SimConfig{Threads: 6, Seed: 29, NoiseFrac: 0.1})
	r1, err := s1.Run(agent, engine.CloneArrivals(eval))
	if err != nil {
		t.Fatal(err)
	}
	s2 := engine.NewSim(engine.SimConfig{Threads: 6, Seed: 29, NoiseFrac: 0.1})
	r2, err := s2.Run(restored, engine.CloneArrivals(eval))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Durations, r2.Durations) || r1.Makespan != r2.Makespan {
		t.Fatalf("restored agent schedules differently:\n live     %v (makespan %v)\n restored %v (makespan %v)",
			r1.Durations, r1.Makespan, r2.Durations, r2.Makespan)
	}
}

// TestLSchedLoaderBumpsParamsVersion pins the cache-invalidation
// contract the hot-swap path relies on: loading a checkpoint bumps the
// params version counter, which keys the encoder cache.
func TestLSchedLoaderBumpsParamsVersion(t *testing.T) {
	src := greedyAgent(3)
	params, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	store := testStore(t)
	v, err := store.Put(policystore.PutOptions{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := store.Get(v)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := LSchedLoader(lsched.DefaultOptions(3))(ck)
	if err != nil {
		t.Fatal(err)
	}
	agent := sched.(*lsched.Agent)
	if agent.Params().Version() == 0 {
		t.Fatal("Restore did not bump the params version; stale encoder-cache entries could survive a swap")
	}
}

// nopSched is the cheapest possible policy, isolating HotAgent's
// delegation overhead.
type nopSched struct{}

func (nopSched) Name() string                                          { return "nop" }
func (nopSched) OnEvent(*engine.State, engine.Event) []engine.Decision { return nil }

// BenchmarkHotSwap shows Install is O(pointer store): no locks, no
// allocation proportional to model size.
func BenchmarkHotSwap(b *testing.B) {
	hot := NewHotAgent(nopSched{}, 1)
	a, bSched := nopSched{}, nopSched{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			hot.Install(a, 1)
		} else {
			hot.Install(bSched, 2)
		}
	}
}

// BenchmarkHotAgentOnEvent shows the serving-path cost of the
// indirection: one atomic pointer load per event.
func BenchmarkHotAgentOnEvent(b *testing.B) {
	hot := NewHotAgent(nopSched{}, 1)
	st := &engine.State{}
	ev := engine.Event{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hot.OnEvent(st, ev)
	}
}
