// Package serving is the live half of the policy lifecycle: it puts a
// hot-swappable indirection in front of any engine.Scheduler, replays
// candidate policies in shadow on the same event stream, and promotes a
// candidate to the serving slot only when its evaluation beats the
// active policy — rolling back otherwise.
//
// The split with internal/policystore mirrors a production deployment:
// policystore owns durable versioned artifacts, serving owns the
// in-process mechanics of running one of them under live traffic and
// changing which one without pausing dispatch.
package serving

import (
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/metrics"
)

// slot pairs a scheduler with the policy-store version it was loaded
// from; HotAgent swaps whole slots so both change atomically.
type slot struct {
	sched   engine.Scheduler
	version int
}

// HotAgent wraps an engine.Scheduler behind an atomic pointer so the
// policy can be replaced mid-run, between OnEvent calls, without
// pausing the engine. Swapping costs one pointer store on the writer
// and one pointer load per OnEvent on the serving path — no locks, no
// allocation (see BenchmarkHotSwap).
//
// Decisions taken before the swap point are exactly the wrapped
// scheduler's; after Install returns, the next OnEvent runs the new
// policy. A policy loaded via nn.Params.Load bumps its params version
// counter, so a fresh agent's encoder cache never serves encodings
// computed under other parameter values.
//
// HotAgent also forwards engine.QueryObserver callbacks to the current
// scheduler when it implements the interface, so an OnlineAgent keeps
// learning while it is the serving policy.
type HotAgent struct {
	cur   atomic.Pointer[slot]
	swaps atomic.Uint64

	// mSwaps, when instrumented, mirrors the swap count into the
	// metrics registry (exposed as policy_swaps_total).
	mSwaps *metrics.Counter
}

// NewHotAgent wraps an initial scheduler. version labels where it came
// from (0 = not from the store). The initial install does not count as
// a swap.
func NewHotAgent(initial engine.Scheduler, version int) *HotAgent {
	h := &HotAgent{}
	stampPolicyVersion(initial, version)
	h.cur.Store(&slot{sched: initial, version: version})
	return h
}

// stampPolicyVersion pushes the policy-store version into schedulers
// that record decision provenance (lsched.Agent, lsched.OnlineAgent),
// so every flight-recorder entry names the checkpoint that produced it.
func stampPolicyVersion(sched engine.Scheduler, version int) {
	if s, ok := sched.(interface{ SetPolicyVersion(int) }); ok {
		s.SetPolicyVersion(version)
	}
}

// Instrument attaches the swap counter to a registry (nil is a no-op).
func (h *HotAgent) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	h.mSwaps = reg.Counter("policy_swaps_total")
}

// Install atomically replaces the serving policy. It may be called from
// any goroutine while the engine is mid-run; OnEvent calls in flight
// finish on the policy they started with, the next event runs the new
// one.
func (h *HotAgent) Install(sched engine.Scheduler, version int) {
	stampPolicyVersion(sched, version)
	h.cur.Store(&slot{sched: sched, version: version})
	h.swaps.Add(1)
	h.mSwaps.Inc()
}

// Current returns the serving scheduler and its store version.
func (h *HotAgent) Current() (engine.Scheduler, int) {
	s := h.cur.Load()
	return s.sched, s.version
}

// ActiveVersion returns the store version of the serving policy.
func (h *HotAgent) ActiveVersion() int { return h.cur.Load().version }

// Swaps returns how many Install calls have happened.
func (h *HotAgent) Swaps() uint64 { return h.swaps.Load() }

// Name implements engine.Scheduler, delegating to the serving policy.
func (h *HotAgent) Name() string { return h.cur.Load().sched.Name() }

// OnEvent implements engine.Scheduler: one atomic load, then the
// serving policy decides.
func (h *HotAgent) OnEvent(st *engine.State, ev engine.Event) []engine.Decision {
	return h.cur.Load().sched.OnEvent(st, ev)
}

// QueryCompleted implements engine.QueryObserver by forwarding to the
// serving policy when it observes query lifecycles (e.g. an online
// self-correcting agent).
func (h *HotAgent) QueryCompleted(queryID int, arrival, completion float64) {
	if o, ok := h.cur.Load().sched.(engine.QueryObserver); ok {
		o.QueryCompleted(queryID, arrival, completion)
	}
}
