package serving

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/lsched"
	"repro/internal/policystore"
)

// LSchedLoader returns a PromoterConfig.Load function that builds a
// greedy LSched agent from each checkpoint's params blob. Every load
// constructs a fresh agent (own tapes, own encoding cache), so a
// candidate under evaluation never shares mutable state with the
// serving policy. nn.Params.Load bumps the params version counter,
// which keys the encoder cache — a loaded agent can never serve
// encodings computed under different parameter values.
func LSchedLoader(opts lsched.Options) func(ck *policystore.Checkpoint) (engine.Scheduler, error) {
	return func(ck *policystore.Checkpoint) (engine.Scheduler, error) {
		agent := lsched.New(opts)
		if err := agent.Restore(ck.Params); err != nil {
			return nil, fmt.Errorf("serving: restore policy v%d: %w", ck.Manifest.Version, err)
		}
		agent.SetGreedy(true)
		return agent, nil
	}
}
