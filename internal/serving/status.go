package serving

import (
	"repro/internal/policystore"
)

// PolicyStatus is the policy-lifecycle snapshot the obs server's
// /policy endpoint serves.
type PolicyStatus struct {
	// ActiveVersion is the store's promoted version (CURRENT), 0 when
	// nothing has been promoted (or no store is attached).
	ActiveVersion int `json:"active_version"`
	// ServingVersion is the version installed in the hot serving slot;
	// it can briefly trail ActiveVersion during a trial promotion.
	ServingVersion int `json:"serving_version"`
	// Swaps counts hot-swaps performed since process start.
	Swaps uint64 `json:"swaps"`
	// Versions lists the loadable checkpoints, oldest first.
	Versions []PolicyVersion `json:"versions"`
}

// PolicyVersion is one store entry in a PolicyStatus.
type PolicyVersion struct {
	Version       int                `json:"version"`
	Parent        int                `json:"parent,omitempty"`
	CreatedAtUnix int64              `json:"created_at_unix"`
	Source        string             `json:"source,omitempty"`
	Metrics       map[string]float64 `json:"metrics,omitempty"`
}

// PolicyStatusProvider adapts a store and a hot serving slot (either
// may be nil) into the provider obs.Options.Policy expects. Every call
// re-reads the store, so the endpoint reflects promotions and rollbacks
// made by other processes (policyctl) too.
func PolicyStatusProvider(store *policystore.Store, hot *HotAgent) func() any {
	return func() any {
		var st PolicyStatus
		if hot != nil {
			st.ServingVersion = hot.ActiveVersion()
			st.Swaps = hot.Swaps()
		}
		if store != nil {
			if v, err := store.Active(); err == nil {
				st.ActiveVersion = v
			}
			if manifests, err := store.List(); err == nil {
				for _, m := range manifests {
					st.Versions = append(st.Versions, PolicyVersion{
						Version:       m.Version,
						Parent:        m.Parent,
						CreatedAtUnix: m.CreatedAtUnix,
						Source:        m.Source,
						Metrics:       m.Metrics,
					})
				}
			}
		}
		return st
	}
}
