package exec

import (
	"math/rand"
	"testing"
)

func TestCountTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl := NewCountTable(4)
	ref := make(map[int64]int64)
	// Adversarial key mix: dense, sparse, negative, and zero keys, with
	// enough volume to force several regrowths.
	for i := 0; i < 5000; i++ {
		var k int64
		switch rng.Intn(4) {
		case 0:
			k = int64(rng.Intn(50))
		case 1:
			k = rng.Int63()
		case 2:
			k = -int64(rng.Intn(1000))
		default:
			k = 0
		}
		tbl.Add(k)
		ref[k]++
	}
	if tbl.Len() != len(ref) {
		t.Fatalf("distinct keys = %d, want %d", tbl.Len(), len(ref))
	}
	if tbl.Total() != 5000 {
		t.Fatalf("total = %d, want 5000", tbl.Total())
	}
	for k, c := range ref {
		if got := tbl.Count(k); got != c {
			t.Fatalf("count(%d) = %d, want %d", k, got, c)
		}
	}
	for i := 0; i < 100; i++ {
		k := rng.Int63()
		if _, present := ref[k]; !present && tbl.Count(k) != 0 {
			t.Fatalf("count(%d) nonzero for absent key", k)
		}
	}
}

func TestCountTableProbeBatch(t *testing.T) {
	tbl := NewCountTable(0)
	tbl.AddBatch([]int64{2, 4, 6, 2})
	keys := []int64{1, 2, 3, 4, 5, 6, 2}
	sel := tbl.ProbeBatch(keys, nil)
	want := []int{1, 3, 5, 6}
	if len(sel) != len(want) {
		t.Fatalf("probe kept %v, want %v", sel, want)
	}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("probe kept %v, want %v", sel, want)
		}
	}
	// Nil and empty tables match nothing.
	var nilT *CountTable
	if got := nilT.ProbeBatch(keys, nil); len(got) != 0 {
		t.Fatalf("nil table matched %d keys", len(got))
	}
	if got := (&CountTable{}).ProbeBatch(keys, sel); len(got) != 0 {
		t.Fatalf("empty table matched %d keys", len(got))
	}
}

func TestSumTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := NewSumTable(0)
	ref := make(map[int64]float64)
	for i := 0; i < 3000; i++ {
		k := int64(rng.Intn(200)) - 100
		v := rng.Float64()
		tbl.Add(k, v)
		ref[k] += v
	}
	if tbl.Len() != len(ref) {
		t.Fatalf("distinct keys = %d, want %d", tbl.Len(), len(ref))
	}
	for k, s := range ref {
		if got := tbl.Sum(k); got != s {
			t.Fatalf("sum(%d) = %v, want %v", k, got, s)
		}
	}
	keys, sums := tbl.Export(nil, nil)
	if len(keys) != len(ref) || len(sums) != len(ref) {
		t.Fatalf("export %d/%d entries, want %d", len(keys), len(sums), len(ref))
	}
	for i, k := range keys {
		if ref[k] != sums[i] {
			t.Fatalf("export key %d has sum %v, want %v", k, sums[i], ref[k])
		}
	}
}

func TestSumTableAddOnes(t *testing.T) {
	tbl := NewSumTable(0)
	tbl.AddOnes([]int64{3, 3, 9})
	if got := tbl.Sum(3); got != 2 {
		t.Fatalf("sum(3) = %v, want 2", got)
	}
	if got := tbl.Sum(9); got != 1 {
		t.Fatalf("sum(9) = %v, want 1", got)
	}
	if tbl.Len() != 2 {
		t.Fatalf("len = %d, want 2", tbl.Len())
	}
}
