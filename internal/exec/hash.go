package exec

// Open-addressing int64 hash tables for the join-build, probe, and
// aggregation kernels. Both tables share the same layout: parallel
// key/value/used arrays with power-of-two capacity, linear probing, and
// no tombstones (the engine's tables are insert-only within a query, so
// deletion never happens and probes terminate at the first free slot).
// Compared to map[int64]T this removes per-operation hashing interface
// overhead, bucket pointer chasing, and incremental-growth write
// barriers from the per-row hot loops.

const (
	// tableMinCap is the smallest backing array; small enough that
	// per-operator tables stay cheap, large enough to avoid immediate
	// regrowth for typical blocks.
	tableMinCap = 64
	// fibMult is the 64-bit Fibonacci hashing multiplier (2^64/phi).
	fibMult = 0x9E3779B97F4A7C15
)

// hashSlot maps a key to its home slot for a table with the given shift
// (64 - log2(capacity)). Multiply-shift spreads dense integer keys —
// the common case for synthetic join keys — across the high bits.
func hashSlot(k int64, shift uint) uint64 {
	return (uint64(k) * fibMult) >> shift
}

// CountTable counts occurrences per int64 key: the hash-join build side
// (key -> number of build rows) and the distinct-count aggregate.
type CountTable struct {
	keys   []int64
	counts []int64
	used   []bool
	n      int // occupied slots
	total  int64
	mask   uint64
	shift  uint
}

// NewCountTable returns a table pre-sized for about hint distinct keys.
func NewCountTable(hint int) *CountTable {
	t := &CountTable{}
	t.init(capFor(hint))
	return t
}

func capFor(hint int) int {
	c := tableMinCap
	for c < hint*2 {
		c <<= 1
	}
	return c
}

func (t *CountTable) init(capacity int) {
	t.keys = make([]int64, capacity)
	t.counts = make([]int64, capacity)
	t.used = make([]bool, capacity)
	t.n = 0
	t.mask = uint64(capacity - 1)
	t.shift = 64 - log2(capacity)
}

func log2(c int) uint {
	var s uint
	for c > 1 {
		c >>= 1
		s++
	}
	return s
}

// Add increments the count of k, growing the table when load passes 3/4.
func (t *CountTable) Add(k int64) {
	if t.keys == nil {
		t.init(tableMinCap)
	}
	t.total++
	i := hashSlot(k, t.shift)
	for t.used[i] {
		if t.keys[i] == k {
			t.counts[i]++
			return
		}
		i = (i + 1) & t.mask
	}
	t.keys[i] = k
	t.counts[i] = 1
	t.used[i] = true
	t.n++
	if uint64(t.n)*4 > (t.mask+1)*3 {
		t.grow()
	}
}

// AddBatch inserts every key of one block's key column.
func (t *CountTable) AddBatch(keys []int64) {
	for _, k := range keys {
		t.Add(k)
	}
}

func (t *CountTable) grow() {
	keys, counts, used := t.keys, t.counts, t.used
	t.init(len(keys) * 2)
	for i, u := range used {
		if !u {
			continue
		}
		j := hashSlot(keys[i], t.shift)
		for t.used[j] {
			j = (j + 1) & t.mask
		}
		t.keys[j] = keys[i]
		t.counts[j] = counts[i]
		t.used[j] = true
		t.n++
	}
}

// Count returns the count stored for k (0 when absent).
func (t *CountTable) Count(k int64) int64 {
	if t == nil || t.keys == nil {
		return 0
	}
	i := hashSlot(k, t.shift)
	for t.used[i] {
		if t.keys[i] == k {
			return t.counts[i]
		}
		i = (i + 1) & t.mask
	}
	return 0
}

// Len returns the number of distinct keys.
func (t *CountTable) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Total returns the sum of all counts (number of Add calls).
func (t *CountTable) Total() int64 {
	if t == nil {
		return 0
	}
	return t.total
}

// ProbeBatch fills sel with the indices of keys present in the table
// (count > 0) — the hash-join probe kernel. The returned selection
// vector reuses sel's backing array when large enough.
func (t *CountTable) ProbeBatch(keys []int64, sel []int) []int {
	sel = growSel(sel, len(keys))
	if t == nil || t.keys == nil {
		return sel[:0]
	}
	k := 0
	for i, key := range keys {
		sel[k] = i
		j := hashSlot(key, t.shift)
		for t.used[j] {
			if t.keys[j] == key {
				k++
				break
			}
			j = (j + 1) & t.mask
		}
	}
	return sel[:k]
}

// SumTable accumulates a float64 per int64 key: the grouped-aggregate
// state (key -> running sum/count).
type SumTable struct {
	keys  []int64
	sums  []float64
	used  []bool
	n     int
	mask  uint64
	shift uint
}

// NewSumTable returns a table pre-sized for about hint distinct keys.
func NewSumTable(hint int) *SumTable {
	t := &SumTable{}
	t.initSum(capFor(hint))
	return t
}

func (t *SumTable) initSum(capacity int) {
	t.keys = make([]int64, capacity)
	t.sums = make([]float64, capacity)
	t.used = make([]bool, capacity)
	t.n = 0
	t.mask = uint64(capacity - 1)
	t.shift = 64 - log2(capacity)
}

// Add adds v to the accumulator of k.
func (t *SumTable) Add(k int64, v float64) {
	if t.keys == nil {
		t.initSum(tableMinCap)
	}
	i := hashSlot(k, t.shift)
	for t.used[i] {
		if t.keys[i] == k {
			t.sums[i] += v
			return
		}
		i = (i + 1) & t.mask
	}
	t.keys[i] = k
	t.sums[i] = v
	t.used[i] = true
	t.n++
	if uint64(t.n)*4 > (t.mask+1)*3 {
		t.growSum()
	}
}

// Reset clears the table for reuse while keeping its capacity, so a
// pooled table serves its next query without re-growing.
func (t *SumTable) Reset() {
	for i := range t.used {
		t.used[i] = false
	}
	t.n = 0
}

// AddOnes adds 1 to the accumulator of every key in one block's key
// column — the count-per-group aggregate kernel.
func (t *SumTable) AddOnes(keys []int64) {
	for _, k := range keys {
		t.Add(k, 1)
	}
}

func (t *SumTable) growSum() {
	keys, sums, used := t.keys, t.sums, t.used
	t.initSum(len(keys) * 2)
	for i, u := range used {
		if !u {
			continue
		}
		j := hashSlot(keys[i], t.shift)
		for t.used[j] {
			j = (j + 1) & t.mask
		}
		t.keys[j] = keys[i]
		t.sums[j] = sums[i]
		t.used[j] = true
		t.n++
	}
}

// Sum returns the accumulator for k (0 when absent).
func (t *SumTable) Sum(k int64) float64 {
	if t == nil || t.keys == nil {
		return 0
	}
	i := hashSlot(k, t.shift)
	for t.used[i] {
		if t.keys[i] == k {
			return t.sums[i]
		}
		i = (i + 1) & t.mask
	}
	return 0
}

// Len returns the number of distinct keys.
func (t *SumTable) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Export appends every (key, sum) pair to the given slices (either may
// be nil) in slot order and returns them — the finalize-aggregate
// input. Slot order is deterministic for a fixed insertion history.
func (t *SumTable) Export(keys []int64, sums []float64) ([]int64, []float64) {
	if t == nil {
		return keys, sums
	}
	for i, u := range t.used {
		if u {
			keys = append(keys, t.keys[i])
			sums = append(sums, t.sums[i])
		}
	}
	return keys, sums
}
