package exec

// LSD radix sort for the key-extracted sort path. Above a cutoff the
// comparison sort's n·log n branchy compares lose to 8 counting-sort
// passes of sequential loads and scattered-but-streaming stores; below
// it the quicksort's cache residency wins. Keys are biased by the sign
// bit so signed order falls out of unsigned digit order, and every
// counting pass is stable — BuildPairs emits rows ascending, so equal
// keys keep ascending row order and the (Key, Row) tie-break contract
// of SortPairs holds without ever comparing rows.

// radixSortCutoff is the input size above which the radix sort
// replaces the quicksort.
const radixSortCutoff = 1 << 11

// signBias flips the sign bit so int64 keys compare correctly as
// unsigned digit strings.
const signBias = uint64(1) << 63

// SortPairsScratch sorts pairs ascending by (Key, Row), choosing radix
// sort above the cutoff and the in-place quicksort below it. tmp is the
// caller-owned ping-pong buffer; the (possibly grown) buffer is
// returned for reuse. The sorted result is always left in pairs.
func SortPairsScratch(pairs []KeyRow, tmp []KeyRow) []KeyRow {
	if len(pairs) <= radixSortCutoff {
		SortPairs(pairs)
		return tmp
	}
	return radixSortPairs(pairs, tmp)
}

func radixSortPairs(pairs, tmp []KeyRow) []KeyRow {
	n := len(pairs)
	tmp = growPairs(tmp, n)
	// One histogram pass over the input counts all eight digits at once.
	var counts [8][256]int
	for _, p := range pairs {
		u := uint64(p.Key) ^ signBias
		counts[0][u&0xff]++
		counts[1][(u>>8)&0xff]++
		counts[2][(u>>16)&0xff]++
		counts[3][(u>>24)&0xff]++
		counts[4][(u>>32)&0xff]++
		counts[5][(u>>40)&0xff]++
		counts[6][(u>>48)&0xff]++
		counts[7][(u>>56)&0xff]++
	}
	src, dst := pairs, tmp
	for d := 0; d < 8; d++ {
		c := &counts[d]
		// A digit that is constant across the input permutes nothing;
		// skipping it saves the whole pass (common for small keys,
		// where the high digits are all zero).
		if c[(uint64(src[0].Key)^signBias)>>(8*uint(d))&0xff] == n {
			continue
		}
		// Exclusive prefix sums turn counts into output offsets.
		sum := 0
		for b := 0; b < 256; b++ {
			c[b], sum = sum, sum+c[b]
		}
		shift := 8 * uint(d)
		for _, p := range src {
			b := (uint64(p.Key) ^ signBias) >> shift & 0xff
			dst[c[b]] = p
			c[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &pairs[0] {
		copy(pairs, src)
	}
	return tmp
}

// MergeRuns merges the sorted runs pairs[bounds[i]:bounds[i+1]] into a
// single (Key, Row)-ascending sequence, leaving the result in pairs.
// bounds must be ascending with bounds[0] == 0 and the last bound ==
// len(pairs). The engine's morsel sort sorts each row-range
// independently and merges here; because the merge compares the full
// (Key, Row) order, the result is bit-identical to a serial sort
// regardless of how many morsels the block was split into. tmp is
// caller-owned scratch, returned (possibly grown) for reuse.
func MergeRuns(pairs []KeyRow, bounds []int, tmp []KeyRow) []KeyRow {
	if len(bounds) < 3 {
		return tmp // zero or one run: already sorted
	}
	tmp = growPairs(tmp, bounds[len(bounds)-1])
	src, dst := pairs, tmp
	cur := append([]int(nil), bounds...)
	for len(cur) > 2 {
		next := cur[:1]
		for i := 0; i+2 < len(cur); i += 2 {
			mergeTwo(src, dst, cur[i], cur[i+1], cur[i+2])
			next = append(next, cur[i+2])
		}
		if len(cur)%2 == 0 {
			// Odd run out: copy it through so the ping-pong stays aligned.
			last := len(cur) - 2
			copy(dst[cur[last]:cur[last+1]], src[cur[last]:cur[last+1]])
			next = append(next, cur[last+1])
		}
		src, dst = dst, src
		cur = next
	}
	if &src[0] != &pairs[0] {
		copy(pairs, src)
	}
	return tmp
}

// mergeTwo merges src[lo:mid] and src[mid:hi] into dst[lo:hi].
func mergeTwo(src, dst []KeyRow, lo, mid, hi int) {
	i, j := lo, mid
	for k := lo; k < hi; k++ {
		if i < mid && (j >= hi || !pairLess(src[j], src[i])) {
			dst[k] = src[i]
			i++
		} else {
			dst[k] = src[j]
			j++
		}
	}
}
