// Package exec implements the vectorized columnar execution kernels the
// live engine runs work orders on: typed, branch-hoisted selection
// kernels producing reusable selection vectors, open-addressing hash
// tables with batch probe, gather/projection kernels that materialize
// into pooled blocks, and a key-extracted sort. The kernels mirror the
// block-based Quickstep backend the paper schedules: each call processes
// one storage block, so one kernel invocation is one work order's data
// touch.
//
// Design rules shared by every kernel:
//
//  1. Dispatch once per block, not per row. The predicate kind, the
//     column type, and the output layout are resolved before the row
//     loop; the loop body is a tight typed comparison or copy.
//  2. No per-call allocation on the steady state. Kernels take caller-
//     owned scratch (selection vectors, key/row pairs) and grow it in
//     place; output blocks come from a BlockPool keyed by schema.
//  3. Selection vectors, not materialized intermediates. A filter or
//     probe produces row indices; materialization is a separate gather
//     so fused consumers can skip it.
//
// The scalar per-row path the engine used before this package exists
// in-tree as the live engine's ScalarKernels configuration, kept for
// honest A/B benchmarking (BenchmarkLiveKernels) and differential
// testing.
package exec

// Scratch bundles the per-worker reusable buffers the kernels write
// into. One Scratch must not be used by two goroutines at once; the
// live engine keeps them in a sync.Pool so each concurrently executing
// work order borrows its own.
type Scratch struct {
	// Sel is the reusable selection vector (row indices into a block).
	Sel []int
	// Pairs is the reusable key-extraction buffer for sort kernels.
	Pairs []KeyRow
	// Pairs2 is the radix-sort / partition-scatter ping-pong buffer.
	Pairs2 []KeyRow
	// Marks is the per-row match bitmap the partitioned probe uses to
	// re-emit matches in ascending row order. Kernels that set bits
	// clear them again before returning, so it is all-false between
	// calls.
	Marks []bool
	// DictMap is the per-probe-code membership table of the translated
	// dictionary probe (probe-side code -> present in build table).
	DictMap []uint8
}

// GrowSel returns sel with length exactly n, reusing its backing array
// when capacity allows. Exported for callers (the engine's morsel
// driver) that carve a shared selection vector into per-morsel ranges
// before invoking the range kernels.
func GrowSel(sel []int, n int) []int {
	if cap(sel) < n {
		return make([]int, n)
	}
	return sel[:n]
}

func growSel(sel []int, n int) []int { return GrowSel(sel, n) }

// growMarks returns an all-false bitmap of length n (see Scratch.Marks
// for the clear-on-exit invariant that makes reuse sound).
func growMarks(m []bool, n int) []bool {
	if cap(m) < n {
		return make([]bool, n)
	}
	return m[:n]
}

// growPairs returns pairs with length exactly n, reusing the backing
// array when capacity allows.
func growPairs(pairs []KeyRow, n int) []KeyRow {
	if cap(pairs) < n {
		return make([]KeyRow, n)
	}
	return pairs[:n]
}
