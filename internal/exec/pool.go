package exec

import (
	"sync"

	"repro/internal/metrics"
	"repro/internal/storage"
)

// BlockPool recycles output blocks between work orders so the gather
// kernels write into pre-sized column vectors instead of allocating (and
// zeroing) fresh ones per block. Free lists are keyed by schema pointer
// — every block of one relation (and every projection of it) shares its
// *storage.Schema, so a recycled block's vectors already have the right
// types and only need their lengths adjusted.
//
// Blocks enter the pool when their owning query completes (the live
// engine recycles a query's materialized outputs on the completion
// event, when no worker can still reference them) and leave it on the
// next Get for the same schema. Get and Put are mutex-guarded: they run
// once per work order, not per row, so contention is off the row loop.
//
// A nil *BlockPool is a valid "pooling disabled" handle: Get allocates
// fresh blocks and Put drops them.
type BlockPool struct {
	mu   sync.Mutex
	free map[*storage.Schema][]*storage.Block
	// hits/misses are nil-safe metrics counters (see Instrument).
	hits   *metrics.Counter
	misses *metrics.Counter
}

// maxFreePerSchema bounds each free list so a burst of wide queries
// cannot pin unbounded memory in the pool.
const maxFreePerSchema = 256

// NewBlockPool returns an empty pool.
func NewBlockPool() *BlockPool {
	return &BlockPool{free: make(map[*storage.Schema][]*storage.Block)}
}

// Instrument attaches hit/miss counters (either may be nil). No-op on a
// nil pool.
func (p *BlockPool) Instrument(hits, misses *metrics.Counter) {
	if p == nil {
		return
	}
	p.hits = hits
	p.misses = misses
}

// Get returns a block with the given schema and exactly rows rows, its
// vectors typed per the schema and sized (but not zeroed — callers
// overwrite every row via a gather). Recycles a pooled block when one
// is available, allocating only when a vector's capacity is short.
func (p *BlockPool) Get(schema *storage.Schema, rows int) *storage.Block {
	var b *storage.Block
	if p != nil {
		p.mu.Lock()
		if list := p.free[schema]; len(list) > 0 {
			b = list[len(list)-1]
			p.free[schema] = list[:len(list)-1]
		}
		p.mu.Unlock()
	}
	if b == nil {
		if p != nil {
			p.misses.Inc()
		}
		b = &storage.Block{
			Schema:  schema,
			Vectors: make([]storage.ColumnVector, schema.NumColumns()),
		}
	} else {
		p.hits.Inc()
	}
	b.Header = storage.BlockHeader{Rows: rows}
	for i, col := range schema.Columns {
		v := &b.Vectors[i]
		switch col.Type {
		case storage.Int64Col:
			if cap(v.Ints) < rows {
				v.Ints = make([]int64, rows)
			} else {
				v.Ints = v.Ints[:rows]
			}
		case storage.Float64Col:
			if cap(v.Floats) < rows {
				v.Floats = make([]float64, rows)
			} else {
				v.Floats = v.Floats[:rows]
			}
		case storage.StringCol:
			if cap(v.Strings) < rows {
				v.Strings = make([]string, rows)
			} else {
				v.Strings = v.Strings[:rows]
			}
		}
	}
	return b
}

// GetLike returns a pooled block with the given output schema and
// exactly rows rows, each vector sized to match the REPRESENTATION of
// its source column in block in — in particular a dictionary-coded
// string column gets a Codes vector sharing in's dictionary, not a
// fresh Strings vector. cols maps output columns to source column
// indices (nil = identity); it is how the fused select path requests a
// single-column projection block. Like Get, vectors are sized but not
// zeroed, and a nil pool degrades to plain allocation.
func (p *BlockPool) GetLike(in *storage.Block, schema *storage.Schema, cols []int, rows int) *storage.Block {
	var b *storage.Block
	if p != nil {
		p.mu.Lock()
		if list := p.free[schema]; len(list) > 0 {
			b = list[len(list)-1]
			p.free[schema] = list[:len(list)-1]
		}
		p.mu.Unlock()
	}
	if b == nil {
		if p != nil {
			p.misses.Inc()
		}
		b = &storage.Block{
			Schema:  schema,
			Vectors: make([]storage.ColumnVector, schema.NumColumns()),
		}
	} else {
		p.hits.Inc()
	}
	b.Header = storage.BlockHeader{Rows: rows}
	for i, col := range schema.Columns {
		si := i
		if cols != nil {
			si = cols[i]
		}
		src := &in.Vectors[si]
		v := &b.Vectors[i]
		switch col.Type {
		case storage.Int64Col:
			if cap(v.Ints) < rows {
				v.Ints = make([]int64, rows)
			} else {
				v.Ints = v.Ints[:rows]
			}
		case storage.Float64Col:
			if cap(v.Floats) < rows {
				v.Floats = make([]float64, rows)
			} else {
				v.Floats = v.Floats[:rows]
			}
		case storage.StringCol:
			if src.Codes != nil || (src.Strings == nil && src.Dict != nil) {
				if cap(v.Codes) < rows {
					v.Codes = make([]int64, rows)
				} else {
					v.Codes = v.Codes[:rows]
				}
				v.Dict = src.Dict
				v.Strings = nil
			} else {
				if cap(v.Strings) < rows {
					v.Strings = make([]string, rows)
				} else {
					v.Strings = v.Strings[:rows]
				}
				v.Codes = nil
				v.Dict = nil
			}
		}
	}
	return b
}

// Put returns a block to the pool for reuse. The caller must guarantee
// no one references the block anymore. No-op on a nil pool; blocks
// beyond the per-schema bound are dropped to the GC.
func (p *BlockPool) Put(b *storage.Block) {
	if p == nil || b == nil || b.Schema == nil {
		return
	}
	p.mu.Lock()
	if len(p.free[b.Schema]) < maxFreePerSchema {
		p.free[b.Schema] = append(p.free[b.Schema], b)
	}
	p.mu.Unlock()
}
