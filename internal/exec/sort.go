package exec

// Key-extracted sort kernel. Instead of sort.Slice over row indices
// with a closure dereferencing the key column per comparison, the sort
// operator extracts (key, row) pairs once and sorts the compact pair
// slice directly: comparisons touch 16 contiguous bytes, there is no
// interface or closure call per comparison, and the pair buffer is
// caller-owned scratch. Ties order by row index, which makes the result
// a deterministic total order (row indices are unique) — required for
// the scalar/vector differential tests.

// KeyRow pairs a sort key with the row it came from.
type KeyRow struct {
	Key int64
	Row int32
}

// BuildPairs fills pairs with (keys[i], i), reusing the backing array
// when its capacity suffices.
func BuildPairs(keys []int64, pairs []KeyRow) []KeyRow {
	if cap(pairs) < len(keys) {
		pairs = make([]KeyRow, len(keys))
	} else {
		pairs = pairs[:len(keys)]
	}
	for i, k := range keys {
		pairs[i] = KeyRow{Key: k, Row: int32(i)}
	}
	return pairs
}

// PairsToSel writes the row indices of the sorted pairs into a
// selection vector for the gather kernel.
func PairsToSel(pairs []KeyRow, sel []int) []int {
	sel = growSel(sel, len(pairs))
	for i, p := range pairs {
		sel[i] = int(p.Row)
	}
	return sel
}

// pairLess orders by (Key, Row).
func pairLess(a, b KeyRow) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Row < b.Row
}

// insertionCutoff is the subarray size below which insertion sort beats
// partitioning.
const insertionCutoff = 16

// SortPairs sorts pairs ascending by (Key, Row) with an in-place
// median-of-three quicksort, recursing into the smaller partition and
// looping on the larger so stack depth stays O(log n).
func SortPairs(pairs []KeyRow) {
	lo, hi := 0, len(pairs)
	for hi-lo > insertionCutoff {
		p := partition(pairs, lo, hi)
		if p-lo < hi-p-1 {
			SortPairs(pairs[lo:p])
			lo = p + 1
		} else {
			SortPairs(pairs[p+1 : hi])
			hi = p
		}
	}
	// Insertion sort the remaining short run.
	for i := lo + 1; i < hi; i++ {
		x := pairs[i]
		j := i - 1
		for j >= lo && pairLess(x, pairs[j]) {
			pairs[j+1] = pairs[j]
			j--
		}
		pairs[j+1] = x
	}
}

// partition picks a median-of-three pivot and partitions pairs[lo:hi]
// around it, returning the pivot's final position.
func partition(pairs []KeyRow, lo, hi int) int {
	mid := lo + (hi-lo)/2
	last := hi - 1
	// Order lo, mid, last; the median lands at mid.
	if pairLess(pairs[mid], pairs[lo]) {
		pairs[mid], pairs[lo] = pairs[lo], pairs[mid]
	}
	if pairLess(pairs[last], pairs[mid]) {
		pairs[last], pairs[mid] = pairs[mid], pairs[last]
		if pairLess(pairs[mid], pairs[lo]) {
			pairs[mid], pairs[lo] = pairs[lo], pairs[mid]
		}
	}
	pivot := pairs[mid]
	pairs[mid], pairs[last] = pairs[last], pairs[mid]
	i := lo
	for j := lo; j < last; j++ {
		if pairLess(pairs[j], pivot) {
			pairs[i], pairs[j] = pairs[j], pairs[i]
			i++
		}
	}
	pairs[i], pairs[last] = pairs[last], pairs[i]
	return i
}
