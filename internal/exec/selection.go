package exec

import (
	"repro/internal/plan"
	"repro/internal/storage"
)

// Filter evaluates pred over the first n rows of column v and returns
// the selection vector of kept row indices, reusing sel's backing array
// when it is large enough. The predicate kind and column vector are
// dispatched once; each typed loop writes its candidate index
// unconditionally and advances the output cursor on a comparison
// result, which the compiler lowers branch-free — at mixed
// selectivities this is the difference between a predictable store
// stream and a mispredicted branch per row.
//
// Semantics match the scalar engine's per-row evalPred: a typed
// predicate over a column of the wrong type keeps nothing; PredNone and
// unknown kinds keep everything.
func Filter(pred plan.Predicate, v *storage.ColumnVector, n int, sel []int) []int {
	sel = growSel(sel, n)
	k := 0
	switch pred.Kind {
	case plan.PredIntLess:
		vals := v.Ints
		if vals == nil {
			return sel[:0]
		}
		op := pred.Operand
		for i, x := range vals[:n] {
			sel[k] = i
			if x < op {
				k++
			}
		}
	case plan.PredIntGreaterEq:
		vals := v.Ints
		if vals == nil {
			return sel[:0]
		}
		op := pred.Operand
		for i, x := range vals[:n] {
			sel[k] = i
			if x >= op {
				k++
			}
		}
	case plan.PredIntEq:
		vals := v.Ints
		if vals == nil {
			return sel[:0]
		}
		op := pred.Operand
		for i, x := range vals[:n] {
			sel[k] = i
			if x == op {
				k++
			}
		}
	case plan.PredFloatLess:
		vals := v.Floats
		if vals == nil {
			return sel[:0]
		}
		op := pred.FOperand
		for i, x := range vals[:n] {
			sel[k] = i
			if x < op {
				k++
			}
		}
	case plan.PredStringEq:
		vals := v.Strings
		if vals == nil {
			return sel[:0]
		}
		op := pred.SOperand
		for i, x := range vals[:n] {
			sel[k] = i
			if x == op {
				k++
			}
		}
	default:
		for i := range sel {
			sel[i] = i
		}
		k = n
	}
	return sel[:k]
}
