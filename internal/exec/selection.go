package exec

import (
	"repro/internal/plan"
	"repro/internal/storage"
)

// Filter evaluates pred over the first n rows of column v and returns
// the selection vector of kept row indices, reusing sel's backing array
// when it is large enough. The predicate kind and column vector are
// dispatched once; each typed loop writes its candidate index
// unconditionally and advances the output cursor on a comparison
// result, which the compiler lowers branch-free — at mixed
// selectivities this is the difference between a predictable store
// stream and a mispredicted branch per row.
//
// Semantics match the scalar engine's per-row evalPred: a typed
// predicate over a column of the wrong type keeps nothing; PredNone and
// unknown kinds keep everything. A string-equality predicate over a
// dictionary-coded column resolves the operand to its code once and
// runs the integer-equality loop over codes.
func Filter(pred plan.Predicate, v *storage.ColumnVector, n int, sel []int) []int {
	sel = growSel(sel, n)
	return FilterRange(pred, v, 0, n, sel)
}

// FilterRange is Filter restricted to rows [lo, hi): it writes the kept
// absolute row indices into sel (which must have len >= hi-lo) and
// returns the kept prefix. The engine's morsel driver hands each morsel
// a disjoint sub-range of one shared selection vector, so concurrent
// range filters over one block need no synchronization.
func FilterRange(pred plan.Predicate, v *storage.ColumnVector, lo, hi int, sel []int) []int {
	k := 0
	switch pred.Kind {
	case plan.PredIntLess:
		vals := v.Ints
		if vals == nil {
			return sel[:0]
		}
		op := pred.Operand
		for i, x := range vals[lo:hi] {
			sel[k] = lo + i
			if x < op {
				k++
			}
		}
	case plan.PredIntGreaterEq:
		vals := v.Ints
		if vals == nil {
			return sel[:0]
		}
		op := pred.Operand
		for i, x := range vals[lo:hi] {
			sel[k] = lo + i
			if x >= op {
				k++
			}
		}
	case plan.PredIntEq:
		vals := v.Ints
		if vals == nil {
			return sel[:0]
		}
		op := pred.Operand
		for i, x := range vals[lo:hi] {
			sel[k] = lo + i
			if x == op {
				k++
			}
		}
	case plan.PredFloatLess:
		vals := v.Floats
		if vals == nil {
			return sel[:0]
		}
		op := pred.FOperand
		for i, x := range vals[lo:hi] {
			sel[k] = lo + i
			if x < op {
				k++
			}
		}
	case plan.PredStringEq:
		if codes := v.Codes; codes != nil && v.Dict != nil {
			// Dictionary-coded column: the string compare leaves the
			// row loop entirely — resolve the operand to its code once
			// and the loop is integer equality over codes. An operand
			// outside the dictionary matches nothing.
			op, ok := v.Dict.Code(pred.SOperand)
			if !ok {
				return sel[:0]
			}
			for i, x := range codes[lo:hi] {
				sel[k] = lo + i
				if x == op {
					k++
				}
			}
			break
		}
		vals := v.Strings
		if vals == nil {
			return sel[:0]
		}
		op := pred.SOperand
		for i, x := range vals[lo:hi] {
			sel[k] = lo + i
			if x == op {
				k++
			}
		}
	default:
		for i := lo; i < hi; i++ {
			sel[k] = i
			k++
		}
	}
	return sel[:k]
}
