package exec

import "repro/internal/storage"

// Radix-partitioned hash join. A monolithic open-addressing table
// larger than cache turns every probe into a likely miss; partitioning
// build and probe keys by a radix of the key hash splits one big table
// into cache-sized sub-tables, and probing partition-at-a-time keeps
// each sub-table resident while it is probed. The partition digit is
// taken from a DIFFERENT range of the hash than the sub-tables' slot
// hash (which uses the top bits): using the same bits would make every
// key in a partition collide into one slot run of its sub-table.

const (
	// radixBits fixes the partition fanout. 64 partitions keep each
	// sub-table of a ~256k-key build side around L2 size.
	radixBits       = 6
	radixPartitions = 1 << radixBits
	// radixPartShift positions the partition digit well below the slot
	// hash's top bits.
	radixPartShift = 21
	// partitionedProbeMin is the probe batch size below which the
	// scatter/restitch overhead of partition-at-a-time probing outweighs
	// its locality win and the straight inline probe is used instead.
	partitionedProbeMin = 4096
	// partitionedBuildMin is the distinct-key count below which the whole
	// build side is cache-resident anyway, so partitioning the probe buys
	// no locality and only pays the scatter/restitch pass. ~4k keys is
	// ~64KiB of open-addressing table — comfortably inside L2; measured
	// crossover on the live-kernel benches: a 128-key build probed at 4k
	// rows runs ~20% faster inline, while an 8k-key build still wins
	// partitioned.
	partitionedBuildMin = 4096
)

// radixPart maps a key to its partition.
func radixPart(k int64) int {
	return int((uint64(k) * fibMult >> radixPartShift) & (radixPartitions - 1))
}

// RadixTable is the radix-partitioned join build side: one CountTable
// per partition, populated lazily. It carries the build-side dictionary
// when the join key is a dictionary-coded string column, so probes can
// translate codes across dictionaries.
type RadixTable struct {
	parts [radixPartitions]CountTable
	// dict is the build-side dictionary for coded string keys (nil for
	// integer keys). Probing a coded table with a different probe-side
	// dictionary goes through ProbeDict's translation.
	dict *storage.Dictionary
}

// NewRadixTable returns a table pre-sized for about hint build rows
// spread across the partitions.
func NewRadixTable(hint int) *RadixTable {
	t := &RadixTable{}
	if per := hint / radixPartitions; per > tableMinCap/2 {
		for i := range t.parts {
			t.parts[i].init(capFor(per))
		}
	}
	return t
}

// SetDict records the build-side dictionary (nil for integer keys).
func (t *RadixTable) SetDict(d *storage.Dictionary) { t.dict = d }

// Dict returns the build-side dictionary, nil for integer keys.
func (t *RadixTable) Dict() *storage.Dictionary {
	if t == nil {
		return nil
	}
	return t.dict
}

// Add inserts one key into its partition.
func (t *RadixTable) Add(k int64) {
	t.parts[radixPart(k)].Add(k)
}

// AddBatch inserts every key of one block's key column.
func (t *RadixTable) AddBatch(keys []int64) {
	for _, k := range keys {
		t.parts[radixPart(k)].Add(k)
	}
}

// Count returns the build-row count of k (0 when absent).
func (t *RadixTable) Count(k int64) int64 {
	if t == nil {
		return 0
	}
	return t.parts[radixPart(k)].Count(k)
}

// Len returns the number of distinct keys across all partitions.
func (t *RadixTable) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.parts {
		n += t.parts[i].n
	}
	return n
}

// Total returns the total number of inserted keys (build rows).
func (t *RadixTable) Total() int64 {
	if t == nil {
		return 0
	}
	var total int64
	for i := range t.parts {
		total += t.parts[i].total
	}
	return total
}

// ProbeBatch fills sel with the indices of keys present in the table,
// probing each key's partition inline — the small-batch probe path.
// The returned selection vector reuses sel's backing array.
func (t *RadixTable) ProbeBatch(keys []int64, sel []int) []int {
	sel = growSel(sel, len(keys))
	if t == nil {
		return sel[:0]
	}
	return t.ProbeRange(keys, 0, len(keys), sel)
}

// ProbeRange probes rows [lo, hi) of the key column, writing kept
// absolute row indices into sel (len >= hi-lo) and returning the kept
// prefix — the morsel-parallel probe entry point (disjoint ranges of
// one shared selection vector need no synchronization; the table is
// read-only during probes).
func (t *RadixTable) ProbeRange(keys []int64, lo, hi int, sel []int) []int {
	k := 0
	for i, key := range keys[lo:hi] {
		sel[k] = lo + i
		if t.parts[radixPart(key)].has(key) {
			k++
		}
	}
	return sel[:k]
}

// ProbeBatchPartitioned is the cache-conscious probe for large batches:
// scatter (key, row) pairs by partition, probe partition-at-a-time so
// each sub-table stays cache-resident, then re-emit matches in
// ascending row order via the scratch mark bitmap — the output is
// bit-identical to ProbeBatch. Falls back to the inline probe below
// partitionedProbeMin rows, or when the build side itself is under
// partitionedBuildMin distinct keys.
func (t *RadixTable) ProbeBatchPartitioned(keys []int64, sc *Scratch) []int {
	n := len(keys)
	if t == nil {
		sc.Sel = growSel(sc.Sel, n)
		return sc.Sel[:0]
	}
	if n < partitionedProbeMin || t.Len() < partitionedBuildMin {
		sc.Sel = growSel(sc.Sel, n)
		return t.ProbeRange(keys, 0, n, sc.Sel)
	}
	// Histogram then scatter pairs into partition-contiguous order.
	var counts [radixPartitions + 1]int
	for _, k := range keys {
		counts[radixPart(k)+1]++
	}
	for p := 1; p <= radixPartitions; p++ {
		counts[p] += counts[p-1]
	}
	scat := growPairs(sc.Pairs2, n)
	sc.Pairs2 = scat
	var off [radixPartitions]int
	copy(off[:], counts[:radixPartitions])
	for i, k := range keys {
		p := radixPart(k)
		scat[off[p]] = KeyRow{Key: k, Row: int32(i)}
		off[p]++
	}
	marks := growMarks(sc.Marks, n)
	sc.Marks = marks
	for p := 0; p < radixPartitions; p++ {
		tbl := &t.parts[p]
		if tbl.keys == nil {
			continue
		}
		for _, pr := range scat[counts[p]:counts[p+1]] {
			if tbl.has(pr.Key) {
				marks[pr.Row] = true
			}
		}
	}
	sel := growSel(sc.Sel, n)
	sc.Sel = sel
	k := 0
	for i := 0; i < n; i++ {
		sel[k] = i
		if marks[i] {
			k++
			marks[i] = false // restore the all-false invariant
		}
	}
	return sel[:k]
}

// ProbeDict probes dictionary codes against a table built over coded
// string keys. With a shared dictionary, codes are directly comparable
// and the integer probe runs unchanged. With distinct dictionaries the
// per-value translation (decode probe value, re-encode in the build
// dictionary, probe) is hoisted out of the row loop into a
// per-probe-code membership table — dictionaries are small next to
// blocks — leaving integer lookups in the row loop.
func (t *RadixTable) ProbeDict(probeDict *storage.Dictionary, codes []int64, sc *Scratch) []int {
	n := len(codes)
	if t == nil || t.dict == nil || probeDict == nil {
		sc.Sel = growSel(sc.Sel, n)
		return sc.Sel[:0]
	}
	if t.dict == probeDict {
		return t.ProbeBatchPartitioned(codes, sc)
	}
	m := sc.DictMap
	if cap(m) < probeDict.Len() {
		m = make([]uint8, probeDict.Len())
	} else {
		m = m[:probeDict.Len()]
	}
	sc.DictMap = m
	for c := range m {
		m[c] = 0
		if bc, ok := t.dict.Code(probeDict.Value(int64(c))); ok && t.Count(bc) > 0 {
			m[c] = 1
		}
	}
	sel := growSel(sc.Sel, n)
	sc.Sel = sel
	k := 0
	for i, c := range codes {
		sel[k] = i
		if m[c] == 1 {
			k++
		}
	}
	return sel[:k]
}

// has reports whether k is present (the probe inner loop, shared by the
// inline and partitioned probes).
func (t *CountTable) has(k int64) bool {
	if t.keys == nil {
		return false
	}
	i := hashSlot(k, t.shift)
	for t.used[i] {
		if t.keys[i] == k {
			return true
		}
		i = (i + 1) & t.mask
	}
	return false
}
