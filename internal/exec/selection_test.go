package exec

import (
	"math/rand"
	"testing"

	"repro/internal/plan"
	"repro/internal/storage"
)

// evalRef is the reference per-row predicate evaluation (the scalar
// engine's semantics) the kernels must match.
func evalRef(p plan.Predicate, v *storage.ColumnVector, i int) bool {
	switch p.Kind {
	case plan.PredIntLess:
		return v.Ints != nil && v.Ints[i] < p.Operand
	case plan.PredIntGreaterEq:
		return v.Ints != nil && v.Ints[i] >= p.Operand
	case plan.PredIntEq:
		return v.Ints != nil && v.Ints[i] == p.Operand
	case plan.PredFloatLess:
		return v.Floats != nil && v.Floats[i] < p.FOperand
	case plan.PredStringEq:
		return v.Strings != nil && v.Strings[i] == p.SOperand
	default:
		return true
	}
}

func TestFilterMatchesReferenceAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 513
	ints := make([]int64, n)
	floats := make([]float64, n)
	strs := make([]string, n)
	for i := 0; i < n; i++ {
		ints[i] = int64(rng.Intn(100))
		floats[i] = rng.Float64() * 100
		strs[i] = string(rune('a' + rng.Intn(4)))
	}
	cases := []struct {
		name string
		pred plan.Predicate
		vec  storage.ColumnVector
	}{
		{"int-less", plan.Predicate{Kind: plan.PredIntLess, Operand: 50}, storage.ColumnVector{Ints: ints}},
		{"int-ge", plan.Predicate{Kind: plan.PredIntGreaterEq, Operand: 73}, storage.ColumnVector{Ints: ints}},
		{"int-eq", plan.Predicate{Kind: plan.PredIntEq, Operand: 7}, storage.ColumnVector{Ints: ints}},
		{"float-less", plan.Predicate{Kind: plan.PredFloatLess, FOperand: 33.3}, storage.ColumnVector{Floats: floats}},
		{"string-eq", plan.Predicate{Kind: plan.PredStringEq, SOperand: "b"}, storage.ColumnVector{Strings: strs}},
		{"none", plan.Predicate{Kind: plan.PredNone}, storage.ColumnVector{Ints: ints}},
		{"type-mismatch", plan.Predicate{Kind: plan.PredIntLess, Operand: 50}, storage.ColumnVector{Floats: floats}},
	}
	var sel []int
	for _, tc := range cases {
		sel = Filter(tc.pred, &tc.vec, n, sel)
		var want []int
		for i := 0; i < n; i++ {
			if evalRef(tc.pred, &tc.vec, i) {
				want = append(want, i)
			}
		}
		if len(sel) != len(want) {
			t.Fatalf("%s: kept %d rows, want %d", tc.name, len(sel), len(want))
		}
		for i := range want {
			if sel[i] != want[i] {
				t.Fatalf("%s: sel[%d] = %d, want %d", tc.name, i, sel[i], want[i])
			}
		}
	}
}

func TestFilterReusesScratch(t *testing.T) {
	ints := []int64{5, 1, 9, 3}
	vec := storage.ColumnVector{Ints: ints}
	sel := make([]int, 0, 16)
	base := &sel[:1][0]
	out := Filter(plan.Predicate{Kind: plan.PredIntLess, Operand: 4}, &vec, 4, sel)
	if got, want := len(out), 2; got != want {
		t.Fatalf("kept %d, want %d", got, want)
	}
	if &out[0] != base {
		t.Fatal("filter did not reuse the scratch selection vector")
	}
}

func TestFilterEmptyAndZeroRows(t *testing.T) {
	vec := storage.ColumnVector{Ints: []int64{}}
	if got := Filter(plan.Predicate{Kind: plan.PredIntLess, Operand: 4}, &vec, 0, nil); len(got) != 0 {
		t.Fatalf("empty column kept %d rows", len(got))
	}
	nilVec := storage.ColumnVector{}
	if got := Filter(plan.Predicate{Kind: plan.PredIntEq, Operand: 4}, &nilVec, 0, nil); len(got) != 0 {
		t.Fatalf("nil column kept %d rows", len(got))
	}
}

func TestGatherMaterializesSelectedRows(t *testing.T) {
	schema := storage.MustSchema(
		storage.Column{Name: "a", Type: storage.Int64Col},
		storage.Column{Name: "b", Type: storage.Float64Col},
		storage.Column{Name: "c", Type: storage.StringCol},
	)
	in := &storage.Block{
		Header: storage.BlockHeader{BlockID: 3, Relation: "r", Rows: 4},
		Schema: schema,
		Vectors: []storage.ColumnVector{
			{Ints: []int64{10, 11, 12, 13}},
			{Floats: []float64{0.5, 1.5, 2.5, 3.5}},
			{Strings: []string{"w", "x", "y", "z"}},
		},
	}
	out := Gather(nil, in, []int{3, 1})
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 || out.Header.Relation != "r" || out.Header.BlockID != 3 {
		t.Fatalf("bad header: %+v", out.Header)
	}
	if out.Vectors[0].Ints[0] != 13 || out.Vectors[0].Ints[1] != 11 {
		t.Fatalf("int gather wrong: %v", out.Vectors[0].Ints)
	}
	if out.Vectors[1].Floats[0] != 3.5 || out.Vectors[1].Floats[1] != 1.5 {
		t.Fatalf("float gather wrong: %v", out.Vectors[1].Floats)
	}
	if out.Vectors[2].Strings[0] != "z" || out.Vectors[2].Strings[1] != "x" {
		t.Fatalf("string gather wrong: %v", out.Vectors[2].Strings)
	}
}
