package exec

import (
	"math/rand"
	"sort"
	"testing"
)

// refSortPairs is the reference (Key, Row) sort the kernels must match.
func refSortPairs(pairs []KeyRow) {
	sort.Slice(pairs, func(a, b int) bool { return pairLess(pairs[a], pairs[b]) })
}

func randomKeys(rng *rand.Rand, n int) []int64 {
	keys := make([]int64, n)
	for i := range keys {
		switch rng.Intn(4) {
		case 0:
			keys[i] = int64(rng.Intn(16)) // heavy duplicates
		case 1:
			keys[i] = rng.Int63()
		case 2:
			keys[i] = -rng.Int63()
		default:
			keys[i] = int64(rng.Intn(1 << 20))
		}
	}
	return keys
}

func TestRadixSortMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var tmp []KeyRow
	for _, n := range []int{0, 1, 17, radixSortCutoff, radixSortCutoff + 1, 3*radixSortCutoff + 5} {
		keys := randomKeys(rng, n)
		got := BuildPairs(keys, nil)
		want := BuildPairs(keys, nil)
		tmp = SortPairsScratch(got, tmp)
		refSortPairs(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d position %d: got %+v, want %+v", n, i, got[i], want[i])
			}
		}
	}
}

// Radix passes are stable and BuildPairs emits rows ascending, so equal
// keys must come out in ascending row order — the tie-break contract
// the differential tests compare exact output order against.
func TestRadixSortTieBreakStable(t *testing.T) {
	n := radixSortCutoff * 2
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i % 3) // three heavily duplicated keys
	}
	pairs := BuildPairs(keys, nil)
	SortPairsScratch(pairs, nil)
	for i := 1; i < n; i++ {
		if pairs[i-1].Key > pairs[i].Key {
			t.Fatalf("keys out of order at %d", i)
		}
		if pairs[i-1].Key == pairs[i].Key && pairs[i-1].Row >= pairs[i].Row {
			t.Fatalf("tie at %d not broken by ascending row: %d then %d", i, pairs[i-1].Row, pairs[i].Row)
		}
	}
}

func TestMergeRunsMatchesSerialSort(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, runs := range []int{2, 3, 4, 5, 7} {
		n := 1000*runs + 37
		keys := randomKeys(rng, n)
		got := BuildPairs(keys, nil)
		want := BuildPairs(keys, nil)
		bounds := make([]int, runs+1)
		for p := 0; p <= runs; p++ {
			bounds[p] = p * n / runs
		}
		for p := 0; p < runs; p++ {
			SortPairs(got[bounds[p]:bounds[p+1]])
		}
		MergeRuns(got, bounds, nil)
		refSortPairs(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("runs=%d position %d: got %+v, want %+v", runs, i, got[i], want[i])
			}
		}
	}
}
