package exec

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSortPairsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 2, 15, 16, 17, 100, 4096} {
		keys := make([]int64, n)
		for i := range keys {
			// Narrow key space forces duplicate keys, exercising the
			// row-index tie-break.
			keys[i] = int64(rng.Intn(10)) - 5
		}
		pairs := SortPairsOf(keys)
		ref := make([]KeyRow, n)
		for i, k := range keys {
			ref[i] = KeyRow{Key: k, Row: int32(i)}
		}
		sort.Slice(ref, func(a, b int) bool { return pairLess(ref[a], ref[b]) })
		for i := range ref {
			if pairs[i] != ref[i] {
				t.Fatalf("n=%d: pairs[%d] = %+v, want %+v", n, i, pairs[i], ref[i])
			}
		}
	}
}

// SortPairsOf is a test helper: extract, sort, return.
func SortPairsOf(keys []int64) []KeyRow {
	pairs := BuildPairs(keys, nil)
	SortPairs(pairs)
	return pairs
}

func TestSortPairsAdversarialPatterns(t *testing.T) {
	patterns := map[string]func(i, n int) int64{
		"sorted":   func(i, n int) int64 { return int64(i) },
		"reversed": func(i, n int) int64 { return int64(n - i) },
		"constant": func(i, n int) int64 { return 42 },
		"sawtooth": func(i, n int) int64 { return int64(i % 7) },
		"organ":    func(i, n int) int64 { return int64(min(i, n-i)) },
	}
	const n = 2000
	for name, gen := range patterns {
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = gen(i, n)
		}
		pairs := SortPairsOf(keys)
		for i := 1; i < n; i++ {
			if pairLess(pairs[i], pairs[i-1]) {
				t.Fatalf("%s: out of order at %d: %+v before %+v", name, i, pairs[i-1], pairs[i])
			}
		}
	}
}

func TestBuildPairsReusesScratch(t *testing.T) {
	keys := []int64{9, 1, 5}
	scratch := make([]KeyRow, 0, 8)
	pairs := BuildPairs(keys, scratch)
	if len(pairs) != 3 {
		t.Fatalf("pairs len = %d", len(pairs))
	}
	if &pairs[0] != &scratch[:1][0] {
		t.Fatal("BuildPairs did not reuse scratch capacity")
	}
	sel := PairsToSel(pairs, nil)
	if sel[0] != 0 || sel[1] != 1 || sel[2] != 2 {
		t.Fatalf("unexpected sel: %v", sel)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
