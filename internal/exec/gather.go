package exec

import "repro/internal/storage"

// Gather materializes the selected rows of a block into an output block
// drawn from the pool — the projection kernel every filtering operator
// (select, probe, sort) ends with. The column loop dispatches on the
// schema type once per column; the row loops are tight typed copies
// into pre-sized vectors, so a steady-state gather performs zero
// allocations.
func Gather(p *BlockPool, in *storage.Block, sel []int) *storage.Block {
	out := p.Get(in.Schema, len(sel))
	out.Header.BlockID = in.Header.BlockID
	out.Header.Relation = in.Header.Relation
	for ci, col := range in.Schema.Columns {
		src := &in.Vectors[ci]
		dst := &out.Vectors[ci]
		switch col.Type {
		case storage.Int64Col:
			GatherInt64(dst.Ints, src.Ints, sel)
		case storage.Float64Col:
			GatherFloat64(dst.Floats, src.Floats, sel)
		case storage.StringCol:
			GatherString(dst.Strings, src.Strings, sel)
		}
	}
	return out
}

// GatherInt64 copies src[sel[i]] into dst[i]. dst must have len(sel).
func GatherInt64(dst, src []int64, sel []int) {
	for i, r := range sel {
		dst[i] = src[r]
	}
}

// GatherFloat64 copies src[sel[i]] into dst[i]. dst must have len(sel).
func GatherFloat64(dst, src []float64, sel []int) {
	for i, r := range sel {
		dst[i] = src[r]
	}
}

// GatherString copies src[sel[i]] into dst[i]. dst must have len(sel).
func GatherString(dst, src []string, sel []int) {
	for i, r := range sel {
		dst[i] = src[r]
	}
}
