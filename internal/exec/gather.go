package exec

import "repro/internal/storage"

// Gather materializes the selected rows of a block into an output block
// drawn from the pool — the projection kernel every filtering operator
// (select, probe, sort) ends with. The column loop dispatches on the
// schema type once per column; the row loops are tight typed copies
// into pre-sized vectors, so a steady-state gather performs zero
// allocations. Dictionary-coded string columns are gathered as codes
// (the output shares the input's dictionary) — a projection never
// decodes.
func Gather(p *BlockPool, in *storage.Block, sel []int) *storage.Block {
	out := p.GetLike(in, in.Schema, nil, len(sel))
	out.Header.BlockID = in.Header.BlockID
	out.Header.Relation = in.Header.Relation
	GatherRange(out, in, nil, sel, 0, len(sel))
	return out
}

// GatherFused materializes a single source column into a pooled block
// of the (cached, single-column) fused schema — the projection half of
// the fused select→build/aggregate path, which forwards only the key
// column downstream instead of the full row.
func GatherFused(p *BlockPool, in *storage.Block, schema *storage.Schema, col int, sel []int) *storage.Block {
	out := p.GetLike(in, schema, []int{col}, len(sel))
	out.Header.BlockID = in.Header.BlockID
	out.Header.Relation = in.Header.Relation
	GatherRange(out, in, []int{col}, sel, 0, len(sel))
	return out
}

// GatherRange fills output rows [lo, hi) of out from in's rows
// sel[lo:hi]. cols maps output columns to source column indices (nil =
// identity). out's vectors must already be sized for len(sel) rows (see
// BlockPool.GetLike); disjoint ranges of one output block can be filled
// concurrently — the engine's morsel driver splits large gathers this
// way.
func GatherRange(out, in *storage.Block, cols []int, sel []int, lo, hi int) {
	seg := sel[lo:hi]
	for oi := range out.Schema.Columns {
		si := oi
		if cols != nil {
			si = cols[oi]
		}
		src := &in.Vectors[si]
		dst := &out.Vectors[oi]
		switch {
		case src.Ints != nil:
			GatherInt64(dst.Ints[lo:hi], src.Ints, seg)
		case src.Floats != nil:
			GatherFloat64(dst.Floats[lo:hi], src.Floats, seg)
		case src.Codes != nil:
			GatherInt64(dst.Codes[lo:hi], src.Codes, seg)
		case src.Strings != nil:
			GatherString(dst.Strings[lo:hi], src.Strings, seg)
		}
	}
}

// GatherInt64 copies src[sel[i]] into dst[i]. dst must have len(sel).
func GatherInt64(dst, src []int64, sel []int) {
	for i, r := range sel {
		dst[i] = src[r]
	}
}

// GatherFloat64 copies src[sel[i]] into dst[i]. dst must have len(sel).
func GatherFloat64(dst, src []float64, sel []int) {
	for i, r := range sel {
		dst[i] = src[r]
	}
}

// GatherString copies src[sel[i]] into dst[i]. dst must have len(sel).
func GatherString(dst, src []string, sel []int) {
	for i, r := range sel {
		dst[i] = src[r]
	}
}
