package exec

import (
	"math/rand"
	"testing"

	"repro/internal/plan"
	"repro/internal/storage"
)

func TestRadixTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tbl := NewRadixTable(0)
	ref := make(map[int64]int64)
	for i := 0; i < 8000; i++ {
		var k int64
		switch rng.Intn(4) {
		case 0:
			k = int64(rng.Intn(40))
		case 1:
			k = rng.Int63()
		case 2:
			k = -int64(rng.Intn(500))
		default:
			k = 0
		}
		tbl.Add(k)
		ref[k]++
	}
	if tbl.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tbl.Len(), len(ref))
	}
	if tbl.Total() != 8000 {
		t.Fatalf("Total = %d, want 8000", tbl.Total())
	}
	for k, c := range ref {
		if got := tbl.Count(k); got != c {
			t.Fatalf("Count(%d) = %d, want %d", k, got, c)
		}
	}
}

// The partitioned probe must be bit-identical to the inline probe: same
// matches, ascending row order.
func TestProbeBatchPartitionedMatchesInline(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	build := randomKeys(rng, 200000)
	tbl := NewRadixTable(len(build))
	tbl.AddBatch(build)
	sc := &Scratch{}
	for _, n := range []int{0, 100, partitionedProbeMin, partitionedProbeMin * 4} {
		probe := randomKeys(rng, n)
		// Seed some guaranteed matches.
		for i := 0; i < n; i += 3 {
			probe[i] = build[rng.Intn(len(build))]
		}
		want := tbl.ProbeBatch(probe, nil)
		got := append([]int(nil), tbl.ProbeBatchPartitioned(probe, sc)...)
		if len(got) != len(want) {
			t.Fatalf("n=%d: partitioned kept %d, inline kept %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d position %d: got row %d, want %d", n, i, got[i], want[i])
			}
		}
		// The mark bitmap must be restored to all-false for the next call.
		for i, m := range sc.Marks {
			if m {
				t.Fatalf("n=%d: mark %d left set", n, i)
			}
		}
	}
}

func TestProbeRangeAbsoluteIndices(t *testing.T) {
	tbl := NewRadixTable(0)
	tbl.AddBatch([]int64{10, 20, 30})
	keys := []int64{10, 11, 20, 21, 30, 31}
	sel := make([]int, 3)
	got := tbl.ProbeRange(keys, 2, 5, sel)
	want := []int{2, 4}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ProbeRange kept %v, want %v", got, want)
	}
}

func TestProbeDictSharedAndTranslated(t *testing.T) {
	buildDict := storage.NewDictionary([]string{"apple", "fig", "pear", "zebra"})
	probeDict := storage.NewDictionary([]string{"apple", "banana", "pear", "quince"})
	tbl := NewRadixTable(0)
	for _, v := range []string{"apple", "pear", "pear"} {
		c, ok := buildDict.Code(v)
		if !ok {
			t.Fatal("build value missing from dictionary")
		}
		tbl.Add(c)
	}
	tbl.SetDict(buildDict)
	sc := &Scratch{}

	// Shared dictionary: codes are directly comparable.
	var shared []int64
	for _, v := range []string{"fig", "apple", "zebra", "pear"} {
		c, _ := buildDict.Code(v)
		shared = append(shared, c)
	}
	got := append([]int(nil), tbl.ProbeDict(buildDict, shared, sc)...)
	want := []int{1, 3} // apple, pear
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("shared-dict probe kept %v, want %v", got, want)
	}

	// Distinct dictionaries: values must be translated, not raw codes.
	// probeDict code 0 = "apple" (match), 1 = "banana" (no), 2 = "pear"
	// (match), 3 = "quince" (no) — raw code equality would get this
	// wrong because "banana" shares code 1 with build "fig".
	probe := []int64{0, 1, 2, 3, 2}
	got = append([]int(nil), tbl.ProbeDict(probeDict, probe, sc)...)
	want = []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("translated probe kept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("translated probe kept %v, want %v", got, want)
		}
	}

	// Missing dictionaries on either side match nothing.
	bare := NewRadixTable(0)
	bare.AddBatch(shared)
	if kept := bare.ProbeDict(probeDict, probe, sc); len(kept) != 0 {
		t.Fatalf("probe of int-keyed table with dict codes kept %v, want none", kept)
	}
}

func TestGetLikeAndGatherDictCodes(t *testing.T) {
	dict := storage.NewDictionary([]string{"a", "b", "c"})
	schema := storage.MustSchema(
		storage.Column{Name: "id", Type: storage.Int64Col},
		storage.Column{Name: "tag", Type: storage.StringCol},
	)
	in := &storage.Block{
		Header: storage.BlockHeader{Rows: 5},
		Schema: schema,
		Vectors: []storage.ColumnVector{
			{Ints: []int64{10, 11, 12, 13, 14}},
			{Codes: []int64{2, 0, 1, 2, 0}, Dict: dict},
		},
	}
	p := NewBlockPool()
	out := Gather(p, in, []int{0, 2, 4})
	if out.NumRows() != 3 {
		t.Fatalf("gathered %d rows, want 3", out.NumRows())
	}
	v := &out.Vectors[1]
	if v.Strings != nil || v.Codes == nil || v.Dict != dict {
		t.Fatal("gathered string column should stay dictionary-coded with the shared dict")
	}
	wantCodes := []int64{2, 1, 0}
	for i, c := range v.Codes {
		if c != wantCodes[i] {
			t.Fatalf("gathered codes %v, want %v", v.Codes, wantCodes)
		}
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("gathered block invalid: %v", err)
	}

	// Fused single-column gather over the coded column.
	slim := storage.MustSchema(storage.Column{Name: "tag", Type: storage.StringCol})
	fused := GatherFused(p, in, slim, 1, []int{1, 3})
	if fused.NumRows() != 2 || fused.Vectors[0].Codes == nil || fused.Vectors[0].Dict != dict {
		t.Fatal("fused gather lost the dictionary coding")
	}
	if fused.Vectors[0].Codes[0] != 0 || fused.Vectors[0].Codes[1] != 2 {
		t.Fatalf("fused gather codes %v, want [0 2]", fused.Vectors[0].Codes)
	}

	// Recycle and re-Get: the pooled block must flip representation to
	// match the new source (plain strings this time).
	p.Put(out)
	plain := &storage.Block{
		Header: storage.BlockHeader{Rows: 2},
		Schema: schema,
		Vectors: []storage.ColumnVector{
			{Ints: []int64{1, 2}},
			{Strings: []string{"x", "y"}},
		},
	}
	out2 := Gather(p, plain, []int{1, 0})
	v2 := &out2.Vectors[1]
	if v2.Codes != nil || v2.Dict != nil || v2.Strings == nil {
		t.Fatal("recycled block did not flip back to plain strings")
	}
	if v2.Strings[0] != "y" || v2.Strings[1] != "x" {
		t.Fatalf("gathered strings %v, want [y x]", v2.Strings)
	}
}

func TestFilterDictCodes(t *testing.T) {
	dict := storage.NewDictionary([]string{"a", "b", "c"})
	v := &storage.ColumnVector{Codes: []int64{1, 0, 1, 2}, Dict: dict}
	eq := func(s string) plan.Predicate { return plan.Predicate{Kind: plan.PredStringEq, SOperand: s} }
	sel := Filter(eq("b"), v, 4, nil)
	if len(sel) != 2 || sel[0] != 0 || sel[1] != 2 {
		t.Fatalf("dict filter kept %v, want [0 2]", sel)
	}
	if sel := Filter(eq("zzz"), v, 4, nil); len(sel) != 0 {
		t.Fatalf("dict filter of absent operand kept %v, want none", sel)
	}
	// FilterRange over a sub-range emits absolute indices.
	if sel := FilterRange(eq("b"), v, 2, 4, make([]int, 2)); len(sel) != 1 || sel[0] != 2 {
		t.Fatalf("dict FilterRange kept %v, want [2]", sel)
	}
}
