package exec

import (
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/storage"
)

func poolSchema() *storage.Schema {
	return storage.MustSchema(
		storage.Column{Name: "a", Type: storage.Int64Col},
		storage.Column{Name: "b", Type: storage.Float64Col},
	)
}

func TestBlockPoolRecyclesBackingArrays(t *testing.T) {
	pool := NewBlockPool()
	schema := poolSchema()
	reg := metrics.NewRegistry()
	hits, misses := reg.Counter("hits"), reg.Counter("misses")
	pool.Instrument(hits, misses)

	b1 := pool.Get(schema, 100)
	if misses.Value() != 1 || hits.Value() != 0 {
		t.Fatalf("first get: hits=%d misses=%d", hits.Value(), misses.Value())
	}
	if len(b1.Vectors[0].Ints) != 100 || len(b1.Vectors[1].Floats) != 100 {
		t.Fatalf("vectors not sized: %d/%d", len(b1.Vectors[0].Ints), len(b1.Vectors[1].Floats))
	}
	arr := &b1.Vectors[0].Ints[0]
	pool.Put(b1)
	b2 := pool.Get(schema, 50)
	if hits.Value() != 1 {
		t.Fatalf("second get did not hit the pool: hits=%d misses=%d", hits.Value(), misses.Value())
	}
	if len(b2.Vectors[0].Ints) != 50 {
		t.Fatalf("recycled vector has %d rows, want 50", len(b2.Vectors[0].Ints))
	}
	if &b2.Vectors[0].Ints[0] != arr {
		t.Fatal("recycled block did not reuse the original backing array")
	}
	// Growing past the recycled capacity reallocates just that vector.
	pool.Put(b2)
	b3 := pool.Get(schema, 200)
	if len(b3.Vectors[0].Ints) != 200 || b3.NumRows() != 200 {
		t.Fatalf("grown block has %d rows", len(b3.Vectors[0].Ints))
	}
}

func TestBlockPoolNilSafe(t *testing.T) {
	var pool *BlockPool
	b := pool.Get(poolSchema(), 10)
	if b == nil || b.NumRows() != 10 {
		t.Fatal("nil pool did not allocate a fresh block")
	}
	pool.Put(b) // must not panic
	pool.Instrument(nil, nil)
}

func TestBlockPoolZeroRows(t *testing.T) {
	pool := NewBlockPool()
	b := pool.Get(poolSchema(), 0)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 0 {
		t.Fatalf("rows = %d, want 0", b.NumRows())
	}
}

func TestBlockPoolConcurrentGetPut(t *testing.T) {
	pool := NewBlockPool()
	schema := poolSchema()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := pool.Get(schema, 64)
				b.Vectors[0].Ints[0] = int64(i)
				pool.Put(b)
			}
		}()
	}
	wg.Wait()
}

func TestBlockPoolBoundsFreeList(t *testing.T) {
	pool := NewBlockPool()
	schema := poolSchema()
	for i := 0; i < maxFreePerSchema+50; i++ {
		pool.Put(&storage.Block{Schema: schema, Vectors: make([]storage.ColumnVector, 2)})
	}
	if got := len(pool.free[schema]); got != maxFreePerSchema {
		t.Fatalf("free list holds %d blocks, want cap %d", got, maxFreePerSchema)
	}
}
