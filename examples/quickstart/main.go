// Quickstart: train a small LSched agent on a TPC-H workload, then
// schedule a held-out streaming workload and compare it against fair
// scheduling. Runs in under a minute.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
)

func main() {
	const seed = 42

	// 1. Build the benchmark pool: TPC-H plans at the paper's scale
	// factors, split 50/50 into train and test queries.
	pool, err := core.NewPool(core.BenchTPCH, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPC-H pool: %d training plans, %d test plans\n", len(pool.Train), len(pool.Test))

	// 2. Train the agent with REINFORCE on small streaming episodes.
	agent := core.NewAgent(core.DefaultAgentOptions(seed))
	cfg := core.DefaultTrainConfig(seed)
	cfg.Episodes = 60
	cfg.SimCfg = core.SimConfig{Threads: 16, NoiseFrac: 0.1}
	cfg.Workload = func(ep int, rng *rand.Rand) []core.Arrival {
		return core.Streaming(pool.Train, 8, 0.5, rng)
	}
	fmt.Println("training for 60 episodes...")
	if _, err := core.Train(agent, cfg); err != nil {
		log.Fatal(err)
	}
	agent.SetGreedy(true)

	// 3. Schedule a held-out workload and compare with fair scheduling.
	for _, sched := range []core.Scheduler{agent, core.Fair{}} {
		rng := rand.New(rand.NewSource(seed))
		arrivals := core.Streaming(pool.Test, 16, 0.5, rng)
		sim := core.NewSim(core.SimConfig{Threads: 16, Seed: seed, NoiseFrac: 0.1})
		res, err := sim.Run(sched, arrivals)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s avg query duration %8.2f  makespan %8.2f  (%d work orders, %d decisions)\n",
			sched.Name(), res.AvgDuration(), res.Makespan, res.WorkOrders, res.SchedActions)
	}
}
