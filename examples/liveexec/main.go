// Liveexec: runs benchmark queries on the live execution engine — work
// orders really scan, filter, hash-join, and aggregate columnar blocks,
// and durations are measured wall-clock — under two schedulers. This is
// the path that grounds the simulator's cost model in real executions.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

func main() {
	const seed = 5

	// SSB plans at a tiny scale factor keep live execution quick.
	plans := core.SSB(0.1)
	catalog, err := workload.SyntheticCatalog(plans, 2048, 8, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic catalog: %d relations (%v ...)\n", catalog.Len(), catalog.Names()[:3])

	rng := rand.New(rand.NewSource(seed))
	var arrivals []core.Arrival
	for i := 0; i < 8; i++ {
		arrivals = append(arrivals, core.Arrival{Plan: plans[rng.Intn(len(plans))].Clone(), At: float64(i) * 0.001})
	}

	for _, s := range []core.Scheduler{core.Quickstep{}, core.Fair{}} {
		live := core.NewLive(catalog, core.LiveConfig{Threads: 4, TimeScale: 1})
		if err := live.Validate(plans); err != nil {
			log.Fatal(err)
		}
		res, err := live.Run(s, cloneAll(arrivals))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %d work orders executed, makespan %.4fs\n", s.Name(), res.WorkOrders, res.Makespan)
		for qid, rows := range res.OutputRows {
			fmt.Printf("  query %d produced %d rows in %.4fs\n", qid, rows, res.Durations[qid])
		}
		fmt.Println("  measured per-work-order cost by operator (calibrates the simulator):")
		for op, d := range res.OpDurations {
			fmt.Printf("    %-18v %.6fs\n", op, d)
		}
	}
}

func cloneAll(in []core.Arrival) []engine.Arrival {
	out := make([]engine.Arrival, len(in))
	for i, a := range in {
		out[i] = engine.Arrival{Plan: a.Plan.Clone(), At: a.At}
	}
	return out
}
