// Batch: the paper's batch-processing scenario — all SSB queries arrive
// at time zero (a user submits a whole script), putting the system under
// maximal pressure. This is where the paper reports LSched's largest
// wins, because good decisions matter most when the load peaks.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
)

const (
	seed    = 11
	threads = 16
	queries = 20
)

func main() {
	pool, err := core.NewPool(core.BenchSSB, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SSB pool: %d training plans, %d test plans\n", len(pool.Train), len(pool.Test))

	agent := core.NewAgent(core.DefaultAgentOptions(seed))
	cfg := core.DefaultTrainConfig(seed)
	cfg.Episodes = 80
	cfg.SimCfg = core.SimConfig{Threads: threads, NoiseFrac: 0.1}
	cfg.Workload = func(ep int, rng *rand.Rand) []core.Arrival {
		return core.Batch(pool.Train, 10, rng)
	}
	fmt.Println("training LSched on batch episodes...")
	if _, err := core.Train(agent, cfg); err != nil {
		log.Fatal(err)
	}
	agent.SetGreedy(true)

	for _, s := range []core.Scheduler{agent, core.Quickstep{}, core.Fair{}, core.FIFO{}} {
		rng := rand.New(rand.NewSource(seed))
		arrivals := core.Batch(pool.Test, queries, rng)
		sim := core.NewSim(core.SimConfig{Threads: threads, Seed: seed, NoiseFrac: 0.1})
		res, err := sim.Run(s, arrivals)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s avg duration %8.1f  makespan %8.1f\n", s.Name(), res.AvgDuration(), res.Makespan)
	}
}
