// Transfer: the paper's §6 transfer-learning workflow — train a model
// on TPC-H, then bootstrap an SSB scheduler from it by freezing the
// inner (convolution and hidden) layers and retraining only the layers
// adjacent to inputs and outputs. Compares learning curves from scratch
// versus transferred.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
)

const (
	seed     = 21
	threads  = 16
	episodes = 60
)

func main() {
	tpch, err := core.NewPool(core.BenchTPCH, seed)
	if err != nil {
		log.Fatal(err)
	}
	ssb, err := core.NewPool(core.BenchSSB, seed)
	if err != nil {
		log.Fatal(err)
	}

	trainOn := func(agent *core.Agent, pool *core.Pool, label string) []float64 {
		var curve []float64
		cfg := core.DefaultTrainConfig(seed)
		cfg.Episodes = episodes
		cfg.SimCfg = core.SimConfig{Threads: threads, NoiseFrac: 0.1}
		cfg.Workload = func(ep int, rng *rand.Rand) []core.Arrival {
			return core.Streaming(pool.Train, 8, 0.5, rng)
		}
		cfg.OnEpisode = func(ep int, avgReward, _ float64) {
			curve = append(curve, avgReward)
		}
		if _, err := core.Train(agent, cfg); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: trained %d episodes\n", label, episodes)
		return curve
	}

	// 1. Source model on TPC-H.
	src := core.NewAgent(core.DefaultAgentOptions(seed))
	trainOn(src, tpch, "source (TPCH)")

	// 2. SSB from scratch vs transferred from the TPC-H model.
	scratch := core.NewAgent(core.DefaultAgentOptions(seed + 1))
	scratchCurve := trainOn(scratch, ssb, "SSB from scratch")

	transferred := core.NewAgent(core.DefaultAgentOptions(seed + 2))
	if err := transferred.TransferFrom(src); err != nil {
		log.Fatal(err)
	}
	frozen := 0
	for _, p := range transferred.Params().All() {
		if p.Frozen() {
			frozen++
		}
	}
	fmt.Printf("transfer: copied source parameters, froze %d inner-layer tensors\n", frozen)
	transferCurve := trainOn(transferred, ssb, "SSB with transfer")

	// 3. Report the smoothed reward curves (higher, i.e. less negative,
	// is better); the transferred run should reach a good reward in
	// roughly half the episodes.
	fmt.Printf("\n%-10s %12s %12s\n", "episodes", "scratch", "transfer")
	for _, m := range []int{10, 20, 30, 40, 50, 60} {
		fmt.Printf("%-10d %12.2f %12.2f\n", m, tail(scratchCurve, m), tail(transferCurve, m))
	}
}

// tail averages the 10 rewards before episode m.
func tail(curve []float64, m int) float64 {
	if m > len(curve) {
		m = len(curve)
	}
	lo := m - 10
	if lo < 0 {
		lo = 0
	}
	s, n := 0.0, 0
	for _, v := range curve[lo:m] {
		s += v
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}
