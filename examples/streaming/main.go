// Streaming: the paper's core evaluation scenario (§7.2) in miniature —
// a dynamic TPC-H workload where queries arrive with exponential gaps,
// scheduled by LSched, Decima, the Quickstep heuristic, tuned SelfTune,
// and fair scheduling. Prints the duration CDF per scheduler.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/core"
)

const (
	seed    = 7
	threads = 24
	queries = 24
	rate    = 0.5
)

func main() {
	pool, err := core.NewPool(core.BenchTPCH, seed)
	if err != nil {
		log.Fatal(err)
	}

	trainCfg := func(s int64) core.TrainConfig {
		cfg := core.DefaultTrainConfig(s)
		cfg.Episodes = 80
		cfg.SimCfg = core.SimConfig{Threads: threads, NoiseFrac: 0.1}
		cfg.Workload = func(ep int, rng *rand.Rand) []core.Arrival {
			return core.Streaming(pool.Train, 10, rate, rng)
		}
		return cfg
	}

	fmt.Println("training LSched...")
	lsched := core.NewAgent(core.DefaultAgentOptions(seed))
	if _, err := core.Train(lsched, trainCfg(seed)); err != nil {
		log.Fatal(err)
	}
	lsched.SetGreedy(true)

	fmt.Println("training Decima baseline...")
	dec := core.NewDecima(seed)
	if _, err := core.Train(dec, core.DecimaTrainConfig(trainCfg(seed))); err != nil {
		log.Fatal(err)
	}
	dec.SetGreedy(true)

	fmt.Println("tuning SelfTune...")
	rng := rand.New(rand.NewSource(seed))
	st, _, err := core.TuneSelfTune(tuneConfig(pool, rng))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-10s %8s %8s %8s %8s\n", "scheduler", "mean", "p50", "p90", "max")
	for _, s := range []core.Scheduler{lsched, dec, core.Quickstep{}, st, core.Fair{}} {
		r := rand.New(rand.NewSource(seed))
		arrivals := core.Streaming(pool.Test, queries, rate, r)
		sim := core.NewSim(core.SimConfig{Threads: threads, Seed: seed, NoiseFrac: 0.1})
		res, err := sim.Run(s, arrivals)
		if err != nil {
			log.Fatal(err)
		}
		ds := make([]float64, 0, len(res.Durations))
		for _, d := range res.Durations {
			ds = append(ds, d)
		}
		sort.Float64s(ds)
		fmt.Printf("%-10s %8.1f %8.1f %8.1f %8.1f\n", s.Name(),
			res.AvgDuration(), ds[len(ds)/2], ds[int(0.9*float64(len(ds)-1))], ds[len(ds)-1])
	}
}

func tuneConfig(pool *core.Pool, rng *rand.Rand) core.SelfTuneConfig {
	var ws [][]core.Arrival
	for i := 0; i < 2; i++ {
		ws = append(ws, core.Streaming(pool.Train, 10, rate, rng))
	}
	return core.SelfTuneConfig{
		Rounds: 10, Restarts: 2, Seed: seed,
		SimCfg:    core.SimConfig{Threads: threads, NoiseFrac: 0.1},
		Workloads: ws,
	}
}
