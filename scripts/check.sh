#!/usr/bin/env bash
# CI gate: static checks, build, full test suite, and the race-detector
# pass over the concurrent packages (the live engine executes dispatch
# rounds on real goroutines; the metrics registry is updated from
# worker goroutines). Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/engine/ ./internal/exec/ ./internal/metrics/ ./internal/obs/ ./internal/policystore/ ./internal/serving/ ./internal/rpcsched/ ./internal/frontdoor/ ./internal/provenance/ ./internal/cluster/"
go test -race ./internal/engine/ ./internal/exec/ ./internal/metrics/ ./internal/obs/ \
  ./internal/policystore/ ./internal/serving/ ./internal/rpcsched/ ./internal/frontdoor/ \
  ./internal/provenance/ ./internal/cluster/

echo "== go test -race -run TestTrainRollouts ./internal/lsched/"
go test -race -run TestTrainRollouts ./internal/lsched/

echo "== policy store smoke (put/get/promote round trip)"
go test -count=1 -run TestStorePutGetPromote ./internal/policystore/

echo "== differential smoke (scalar vs vectorized kernels agree)"
go test -count=1 -run 'TestDifferential|TestProbePrefersBuildHashChild' ./internal/engine/

echo "== fusion/morsel race smoke (concurrent morsels inside one work order, fused select)"
go test -race -count=1 -run 'TestLiveMorsels|TestDifferentialMorsels|TestDifferentialFusedSelect' ./internal/engine/

echo "== dictionary encoding smoke (encode/decode round trip)"
go test -count=1 -run 'TestDict' ./internal/storage/

echo "== front door smoke (conservation + overload regression, short)"
go test -count=1 -short -run 'TestConservationUnderChurn|TestOverloadRegression' ./internal/frontdoor/

echo "== sharded front door race smoke (conservation churn, cross-shard fairness, work stealing at 8 procs)"
go test -race -count=1 -run 'TestConservationUnderChurn|TestCrossShardFairness|TestWorkStealingConservation|TestShardRouting' ./internal/frontdoor/

echo "== mutex-contention smoke (sharded submit path must not contend the single-loop global lock)"
mutexdir=$(mktemp -d)
go test -run=NONE -bench='BenchmarkFrontDoorSubmit/sharded' -benchtime=5000x -cpu 8 \
  -mutexprofile "$mutexdir/mutex.out" -o "$mutexdir/frontdoor.test" ./internal/frontdoor/
top=$(go tool pprof -top -nodecount=20 "$mutexdir/frontdoor.test" "$mutexdir/mutex.out")
echo "$top" | sed -n '1,10p'
if echo "$top" | grep -q 'singleCore'; then
  echo "mutex smoke: singleCore lock shows up in sharded-arm contention profile" >&2
  exit 1
fi
rm -rf "$mutexdir"

echo "== drift-detector smoke (shifted feature stream trips the gauge, training stream stays quiet)"
go test -count=1 -run 'TestDriftTripsOnShiftedStream|TestDriftQuietOnTrainingDistribution' ./internal/provenance/

echo "== cluster smoke (2 real nodes + coordinator over TCP, 200 queries, zero lost)"
smokedir=$(mktemp -d)
cleanup_cluster() {
  kill "${node0_pid:-}" "${node1_pid:-}" "${coord_pid:-}" 2>/dev/null || true
  rm -rf "$smokedir"
}
trap cleanup_cluster EXIT
go build -o "$smokedir" ./cmd/lsched-node ./cmd/lsched-cluster ./cmd/lsched-loadgen
"$smokedir/lsched-node" -listen 127.0.0.1:17471 -id smoke-0 -sf 0.02 >"$smokedir/node0.log" 2>&1 &
node0_pid=$!
"$smokedir/lsched-node" -listen 127.0.0.1:17472 -id smoke-1 -sf 0.02 >"$smokedir/node1.log" 2>&1 &
node1_pid=$!
"$smokedir/lsched-cluster" -nodes 127.0.0.1:17471,127.0.0.1:17472 \
  -listen 127.0.0.1:17480 -heartbeat 200ms >"$smokedir/coord.log" 2>&1 &
coord_pid=$!
for _ in $(seq 1 100); do
  if (echo > /dev/tcp/127.0.0.1/17480) 2>/dev/null; then break; fi
  sleep 0.1
done
"$smokedir/lsched-loadgen" -target http://127.0.0.1:17480/query -n 200 -rate 400 -sf 0.02
kill -TERM "$coord_pid"
wait "$coord_pid"
if ! grep -q "lost=0" "$smokedir/coord.log"; then
  echo "cluster smoke: coordinator lost queries" >&2
  cat "$smokedir/coord.log" >&2
  exit 1
fi
grep "cluster:" "$smokedir/coord.log"
kill "$node0_pid" "$node1_pid" 2>/dev/null || true
wait "$node0_pid" "$node1_pid" 2>/dev/null || true

echo "== bench smoke (hot-path microbenchmarks compile and run once)"
go test -run=NONE -bench=. -benchtime=1x -benchmem \
  ./internal/nn/ ./internal/encoder/ ./internal/lsched/ ./internal/serving/ \
  ./internal/engine/ ./internal/cluster/

echo "OK"
