#!/usr/bin/env bash
# CI gate: static checks, build, full test suite, and the race-detector
# pass over the concurrent packages (the live engine executes dispatch
# rounds on real goroutines; the metrics registry is updated from
# worker goroutines). Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/engine/ ./internal/metrics/"
go test -race ./internal/engine/ ./internal/metrics/

echo "OK"
