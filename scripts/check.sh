#!/usr/bin/env bash
# CI gate: static checks, build, full test suite, and the race-detector
# pass over the concurrent packages (the live engine executes dispatch
# rounds on real goroutines; the metrics registry is updated from
# worker goroutines). Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/engine/ ./internal/exec/ ./internal/metrics/ ./internal/obs/ ./internal/policystore/ ./internal/serving/ ./internal/rpcsched/ ./internal/frontdoor/ ./internal/provenance/"
go test -race ./internal/engine/ ./internal/exec/ ./internal/metrics/ ./internal/obs/ \
  ./internal/policystore/ ./internal/serving/ ./internal/rpcsched/ ./internal/frontdoor/ \
  ./internal/provenance/

echo "== go test -race -run TestTrainRollouts ./internal/lsched/"
go test -race -run TestTrainRollouts ./internal/lsched/

echo "== policy store smoke (put/get/promote round trip)"
go test -count=1 -run TestStorePutGetPromote ./internal/policystore/

echo "== differential smoke (scalar vs vectorized kernels agree)"
go test -count=1 -run 'TestDifferential|TestProbePrefersBuildHashChild' ./internal/engine/

echo "== fusion/morsel race smoke (concurrent morsels inside one work order, fused select)"
go test -race -count=1 -run 'TestLiveMorsels|TestDifferentialMorsels|TestDifferentialFusedSelect' ./internal/engine/

echo "== dictionary encoding smoke (encode/decode round trip)"
go test -count=1 -run 'TestDict' ./internal/storage/

echo "== front door smoke (conservation + overload regression, short)"
go test -count=1 -short -run 'TestConservationUnderChurn|TestOverloadRegression' ./internal/frontdoor/

echo "== drift-detector smoke (shifted feature stream trips the gauge, training stream stays quiet)"
go test -count=1 -run 'TestDriftTripsOnShiftedStream|TestDriftQuietOnTrainingDistribution' ./internal/provenance/

echo "== bench smoke (hot-path microbenchmarks compile and run once)"
go test -run=NONE -bench=. -benchtime=1x -benchmem \
  ./internal/nn/ ./internal/encoder/ ./internal/lsched/ ./internal/serving/ \
  ./internal/engine/

echo "OK"
