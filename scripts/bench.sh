#!/usr/bin/env bash
# Hot-path microbenchmark runner. Executes the fast-path benchmark
# suite (tape inference mode, encoding cache, agent scratch buffers,
# concurrent training rollouts, vectorized live-engine kernels, learned
# admission control) and writes the results — including the built-in
# pre-optimization baselines (record-mode encoding, the DisableFastPath
# agent path, rollouts=1 training, the ScalarKernels engine path, the
# heuristic admit-everything front door) — to BENCH_hotpath.json as
# before/after pairs.
#
# Usage: scripts/bench.sh [benchtime]   (default 5x; training uses 3x)
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-5x}"
out="BENCH_hotpath.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "== tape (internal/nn)"
go test -run=NONE -bench='BenchmarkTapeMatVec|BenchmarkTapeForwardInference' \
  -benchtime="$benchtime" -benchmem ./internal/nn/ | tee -a "$raw"

echo "== encoder (internal/encoder)"
go test -run=NONE -bench=BenchmarkEncodeSnapshot \
  -benchtime="$benchtime" -benchmem ./internal/encoder/ | tee -a "$raw"

echo "== agent (internal/lsched)"
go test -run=NONE -bench=BenchmarkAgentOnEvent \
  -benchtime="$benchtime" -benchmem ./internal/lsched/ | tee -a "$raw"

echo "== training rollouts (root)"
go test -run=NONE -bench=BenchmarkTrainRollouts -benchtime=3x . | tee -a "$raw"

echo "== live engine kernels (internal/engine)"
go test -run=NONE -bench='BenchmarkLiveKernels|BenchmarkLiveRun|BenchmarkLiveMorsels' \
  -benchtime="$benchtime" -benchmem ./internal/engine/ | tee -a "$raw"

echo "== admission A/B (internal/frontdoor)"
go test -run=NONE -bench=BenchmarkAdmissionAB -benchtime=3x \
  ./internal/frontdoor/ | tee -a "$raw"

echo "== cluster routing A/B (internal/cluster)"
go test -run=NONE -bench=BenchmarkClusterRouting -benchtime=3x \
  ./internal/cluster/ | tee -a "$raw"

# Collapse benchmark lines into JSON entries. Lines look like:
#   BenchmarkAgentOnEvent/greedy-fast-8  10000  109192 ns/op  416 B/op  2 allocs/op
awk '
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)           # strip GOMAXPROCS suffix
  ns = ""; bytes = ""; allocs = ""; p99 = ""; shed = ""
  for (i = 2; i <= NF; i++) {
    if ($i == "ns/op")     ns     = $(i-1)
    if ($i == "B/op")      bytes  = $(i-1)
    if ($i == "allocs/op") allocs = $(i-1)
    if ($i == "p99-ns")    p99    = $(i-1)
    if ($i == "shed-pct")  shed   = $(i-1)
  }
  if (n++) printf ",\n"
  printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
  if (bytes  != "") printf ", \"bytes_per_op\": %s", bytes
  if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
  if (p99    != "") printf ", \"p99_ns\": %s", p99
  if (shed   != "") printf ", \"shed_pct\": %s", shed
  printf "}"
}
BEGIN {
  print "{"
  print "  \"description\": \"Hot-path microbenchmarks: before entries are the pre-optimization code paths kept in-tree for honest A/B (record-mode encoding, DisableFastPath agent, rollouts=1 training, ScalarKernels live engine, heuristic admit-everything front door); after entries are the optimized fast paths. The admission pair compares p99_ns (end-to-end latency of admitted latency-class queries) and shed_pct (fraction of latency-class queries dropped) under the same seeded 2x-overload trace. The cluster routing pair compares p99_ns of light queries on a 4-node cluster replaying the same skewed heavy/light trace under round-robin vs least-predicted-load routing.\","
  print "  \"pairs\": ["
  print "    {\"before\": \"BenchmarkEncodeSnapshot/record\", \"after\": \"BenchmarkEncodeSnapshot/infer\", \"dimension\": \"gradient-free tape mode\"},"
  print "    {\"before\": \"BenchmarkEncodeSnapshot/infer\", \"after\": \"BenchmarkEncodeSnapshot/cached\", \"dimension\": \"per-query encoding cache\"},"
  print "    {\"before\": \"BenchmarkAgentOnEvent/greedy-full\", \"after\": \"BenchmarkAgentOnEvent/greedy-fast\", \"dimension\": \"agent fast path (inference tape + cache + scratch buffers)\"},"
  print "    {\"before\": \"BenchmarkTrainRollouts/1\", \"after\": \"BenchmarkTrainRollouts/4\", \"dimension\": \"concurrent episode rollouts\"},"
  print "    {\"before\": \"BenchmarkLiveKernels/select/scalar\", \"after\": \"BenchmarkLiveKernels/select/vector\", \"dimension\": \"vectorized selection kernel + pooled gather\"},"
  print "    {\"before\": \"BenchmarkLiveKernels/build/scalar\", \"after\": \"BenchmarkLiveKernels/build/vector\", \"dimension\": \"open-addressing hash build\"},"
  print "    {\"before\": \"BenchmarkLiveKernels/probe/scalar\", \"after\": \"BenchmarkLiveKernels/probe/vector\", \"dimension\": \"batch hash probe + pooled gather\"},"
  print "    {\"before\": \"BenchmarkLiveKernels/aggregate/scalar\", \"after\": \"BenchmarkLiveKernels/aggregate/vector\", \"dimension\": \"open-addressing sum aggregation\"},"
  print "    {\"before\": \"BenchmarkLiveKernels/sort/scalar\", \"after\": \"BenchmarkLiveKernels/sort/vector\", \"dimension\": \"key-extracted sort kernel\"},"
  print "    {\"before\": \"BenchmarkLiveKernels/strselect/scalar\", \"after\": \"BenchmarkLiveKernels/strselect/vector\", \"dimension\": \"dictionary-coded string selection (code compare vs decode+string compare)\"},"
  print "    {\"before\": \"BenchmarkLiveKernels/radixsort/scalar\", \"after\": \"BenchmarkLiveKernels/radixsort/vector\", \"dimension\": \"LSD radix sort on the key-extracted path (64k rows, wide key range)\"},"
  print "    {\"before\": \"BenchmarkLiveKernels/partprobe/scalar\", \"after\": \"BenchmarkLiveKernels/partprobe/vector\", \"dimension\": \"radix-partitioned hash probe (16k-row batches, high-cardinality build)\"},"
  print "    {\"before\": \"BenchmarkLiveKernels/fusedselect/scalar\", \"after\": \"BenchmarkLiveKernels/fusedselect/vector\", \"dimension\": \"fused select->project->consumer (single-column gather)\"},"
  print "    {\"before\": \"BenchmarkLiveMorsels/unsplit\", \"after\": \"BenchmarkLiveMorsels/split\", \"dimension\": \"morsel-parallel work orders (expected wash on a 1-core host; records the split-bookkeeping overhead bound)\"},"
  print "    {\"before\": \"BenchmarkLiveRun/scalar\", \"after\": \"BenchmarkLiveRun/vector\", \"dimension\": \"live engine end-to-end, steady state (vectorized kernels + fusion + block/estimator/agg-table recycling)\"},"
  print "    {\"before\": \"BenchmarkAdmissionAB/heuristic\", \"after\": \"BenchmarkAdmissionAB/learned\", \"dimension\": \"learned admission control (p99_ns of admitted latency-class queries and shed_pct under 2x overload)\"},"
  print "    {\"before\": \"BenchmarkClusterRouting/round-robin\", \"after\": \"BenchmarkClusterRouting/least-loaded\", \"dimension\": \"load-aware cluster routing (p99_ns of light queries on a 4-node cluster under a skewed heavy/light trace)\"}"
  print "  ],"
  print "  \"results\": ["
}
END {
  print ""
  print "  ]"
  print "}"
}
' "$raw" > "$out"

echo "wrote $out"
