#!/usr/bin/env bash
# Hot-path microbenchmark runner. Executes the fast-path benchmark
# suite (tape inference mode, encoding cache, agent scratch buffers,
# concurrent training rollouts, vectorized live-engine kernels, learned
# admission control, the sharded admission core, and the offered-load
# overload curve) and writes the results — including the built-in
# pre-optimization baselines (record-mode encoding, the DisableFastPath
# agent path, rollouts=1 training, the ScalarKernels engine path, the
# heuristic admit-everything front door, the single drain-loop
# admission core) — to BENCH_hotpath.json as before/after pairs.
# The submit A/B runs at -cpu 1,4,8; each result carries a procs field.
#
# Usage: scripts/bench.sh [benchtime]   (default 5x; training uses 3x)
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-5x}"
out="BENCH_hotpath.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "== tape (internal/nn)"
go test -run=NONE -bench='BenchmarkTapeMatVec|BenchmarkTapeForwardInference' \
  -benchtime="$benchtime" -benchmem ./internal/nn/ | tee -a "$raw"

echo "== encoder (internal/encoder)"
go test -run=NONE -bench=BenchmarkEncodeSnapshot \
  -benchtime="$benchtime" -benchmem ./internal/encoder/ | tee -a "$raw"

echo "== agent (internal/lsched)"
go test -run=NONE -bench=BenchmarkAgentOnEvent \
  -benchtime="$benchtime" -benchmem ./internal/lsched/ | tee -a "$raw"

echo "== training rollouts (root)"
go test -run=NONE -bench=BenchmarkTrainRollouts -benchtime=3x . | tee -a "$raw"

echo "== live engine kernels (internal/engine)"
go test -run=NONE -bench='BenchmarkLiveKernels|BenchmarkLiveRun|BenchmarkLiveMorsels' \
  -benchtime="$benchtime" -benchmem ./internal/engine/ | tee -a "$raw"

echo "== admission A/B (internal/frontdoor)"
go test -run=NONE -bench=BenchmarkAdmissionAB -benchtime=3x \
  ./internal/frontdoor/ | tee -a "$raw"

# Fixed iteration count: the suite default (5x) is too few round trips
# for a RunParallel benchmark to settle.
echo "== front door submit, single-loop vs sharded (internal/frontdoor)"
go test -run=NONE -bench=BenchmarkFrontDoorSubmit -benchtime=20000x \
  -cpu 1,4,8 ./internal/frontdoor/ | tee -a "$raw"

echo "== overload curve (internal/frontdoor)"
go test -run=NONE -bench=BenchmarkOverloadCurve -benchtime=3x \
  ./internal/frontdoor/ | tee -a "$raw"

echo "== cluster routing A/B (internal/cluster)"
go test -run=NONE -bench=BenchmarkClusterRouting -benchtime=3x \
  ./internal/cluster/ | tee -a "$raw"

# Collapse benchmark lines into JSON entries. Lines look like:
#   BenchmarkAgentOnEvent/greedy-fast-8  10000  109192 ns/op  416 B/op  2 allocs/op
awk '
/^Benchmark/ {
  name = $1
  procs = ""                          # GOMAXPROCS suffix -> its own field
  if (match(name, /-[0-9]+$/)) {
    procs = substr(name, RSTART + 1)
    sub(/-[0-9]+$/, "", name)
  }
  ns = ""; bytes = ""; allocs = ""; p99 = ""; shed = ""; procsm = ""
  for (i = 2; i <= NF; i++) {
    if ($i == "ns/op")     ns     = $(i-1)
    if ($i == "B/op")      bytes  = $(i-1)
    if ($i == "allocs/op") allocs = $(i-1)
    if ($i == "p99-ns")    p99    = $(i-1)
    if ($i == "shed-pct")  shed   = $(i-1)
    if ($i == "procs")     procsm = $(i-1)
  }
  if (procsm != "") procs = procsm + 0  # a reported procs metric wins
  if (n++) printf ",\n"
  printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
  if (procs  != "") printf ", \"procs\": %s", procs
  if (bytes  != "") printf ", \"bytes_per_op\": %s", bytes
  if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
  if (p99    != "") printf ", \"p99_ns\": %s", p99
  if (shed   != "") printf ", \"shed_pct\": %s", shed
  printf "}"
}
BEGIN {
  print "{"
  print "  \"description\": \"Hot-path microbenchmarks: before entries are the pre-optimization code paths kept in-tree for honest A/B (record-mode encoding, DisableFastPath agent, rollouts=1 training, ScalarKernels live engine, heuristic admit-everything front door, single drain-loop admission core); after entries are the optimized fast paths. Entries with a procs field were taken at that GOMAXPROCS (the submit A/B runs at -cpu 1,4,8; compare arms at matching procs). The admission pair compares p99_ns (end-to-end latency of admitted latency-class queries) and shed_pct (fraction of latency-class queries dropped) under the same seeded 2x-overload trace. The overload-curve pairs sweep offered load from 0.5x to 3x the sustainable rate and record p99_ns and shed_pct per controller at each step. The cluster routing pair compares p99_ns of light queries on a 4-node cluster replaying the same skewed heavy/light trace under round-robin vs least-predicted-load routing.\","
  print "  \"pairs\": ["
  print "    {\"before\": \"BenchmarkEncodeSnapshot/record\", \"after\": \"BenchmarkEncodeSnapshot/infer\", \"dimension\": \"gradient-free tape mode\"},"
  print "    {\"before\": \"BenchmarkEncodeSnapshot/infer\", \"after\": \"BenchmarkEncodeSnapshot/cached\", \"dimension\": \"per-query encoding cache\"},"
  print "    {\"before\": \"BenchmarkAgentOnEvent/greedy-full\", \"after\": \"BenchmarkAgentOnEvent/greedy-fast\", \"dimension\": \"agent fast path (inference tape + cache + scratch buffers)\"},"
  print "    {\"before\": \"BenchmarkTrainRollouts/1\", \"after\": \"BenchmarkTrainRollouts/4\", \"dimension\": \"concurrent episode rollouts\"},"
  print "    {\"before\": \"BenchmarkLiveKernels/select/scalar\", \"after\": \"BenchmarkLiveKernels/select/vector\", \"dimension\": \"vectorized selection kernel + pooled gather\"},"
  print "    {\"before\": \"BenchmarkLiveKernels/build/scalar\", \"after\": \"BenchmarkLiveKernels/build/vector\", \"dimension\": \"open-addressing hash build\"},"
  print "    {\"before\": \"BenchmarkLiveKernels/probe/scalar\", \"after\": \"BenchmarkLiveKernels/probe/vector\", \"dimension\": \"batch hash probe + pooled gather\"},"
  print "    {\"before\": \"BenchmarkLiveKernels/aggregate/scalar\", \"after\": \"BenchmarkLiveKernels/aggregate/vector\", \"dimension\": \"open-addressing sum aggregation\"},"
  print "    {\"before\": \"BenchmarkLiveKernels/sort/scalar\", \"after\": \"BenchmarkLiveKernels/sort/vector\", \"dimension\": \"key-extracted sort kernel\"},"
  print "    {\"before\": \"BenchmarkLiveKernels/strselect/scalar\", \"after\": \"BenchmarkLiveKernels/strselect/vector\", \"dimension\": \"dictionary-coded string selection (code compare vs decode+string compare)\"},"
  print "    {\"before\": \"BenchmarkLiveKernels/radixsort/scalar\", \"after\": \"BenchmarkLiveKernels/radixsort/vector\", \"dimension\": \"LSD radix sort on the key-extracted path (64k rows, wide key range)\"},"
  print "    {\"before\": \"BenchmarkLiveKernels/partprobe/scalar\", \"after\": \"BenchmarkLiveKernels/partprobe/vector\", \"dimension\": \"radix-partitioned hash probe (16k-row batches, high-cardinality build)\"},"
  print "    {\"before\": \"BenchmarkLiveKernels/fusedselect/scalar\", \"after\": \"BenchmarkLiveKernels/fusedselect/vector\", \"dimension\": \"fused select->project->consumer (single-column gather)\"},"
  print "    {\"before\": \"BenchmarkLiveMorsels/unsplit\", \"after\": \"BenchmarkLiveMorsels/split\", \"dimension\": \"morsel-parallel work orders (expected wash on a 1-core host; records the split-bookkeeping overhead bound)\"},"
  print "    {\"before\": \"BenchmarkLiveRun/scalar\", \"after\": \"BenchmarkLiveRun/vector\", \"dimension\": \"live engine end-to-end, steady state (vectorized kernels + fusion + block/estimator/agg-table recycling)\"},"
  print "    {\"before\": \"BenchmarkAdmissionAB/heuristic\", \"after\": \"BenchmarkAdmissionAB/learned\", \"dimension\": \"learned admission control (p99_ns of admitted latency-class queries and shed_pct under 2x overload)\"},"
  print "    {\"before\": \"BenchmarkFrontDoorSubmit/single\", \"after\": \"BenchmarkFrontDoorSubmit/sharded\", \"dimension\": \"sharded admission core (submit->admit->dispatch round trip under concurrent submitters; compare at matching procs)\"},"
  print "    {\"before\": \"BenchmarkOverloadCurve/heuristic/x0.5\", \"after\": \"BenchmarkOverloadCurve/learned/x0.5\", \"dimension\": \"overload curve at 0.5x sustainable (below saturation)\"},"
  print "    {\"before\": \"BenchmarkOverloadCurve/heuristic/x1.0\", \"after\": \"BenchmarkOverloadCurve/learned/x1.0\", \"dimension\": \"overload curve at the sustainable rate\"},"
  print "    {\"before\": \"BenchmarkOverloadCurve/heuristic/x1.5\", \"after\": \"BenchmarkOverloadCurve/learned/x1.5\", \"dimension\": \"overload curve at 1.5x sustainable\"},"
  print "    {\"before\": \"BenchmarkOverloadCurve/heuristic/x2.0\", \"after\": \"BenchmarkOverloadCurve/learned/x2.0\", \"dimension\": \"overload curve at 2x sustainable\"},"
  print "    {\"before\": \"BenchmarkOverloadCurve/heuristic/x3.0\", \"after\": \"BenchmarkOverloadCurve/learned/x3.0\", \"dimension\": \"overload curve at 3x sustainable\"},"
  print "    {\"before\": \"BenchmarkClusterRouting/round-robin\", \"after\": \"BenchmarkClusterRouting/least-loaded\", \"dimension\": \"load-aware cluster routing (p99_ns of light queries on a 4-node cluster under a skewed heavy/light trace)\"}"
  print "  ],"
  print "  \"results\": ["
}
END {
  print ""
  print "  ]"
  print "}"
}
' "$raw" > "$out"

echo "wrote $out"
