// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation (§7) on the simulator substrate. Each
// Benchmark* corresponds to one figure; the printed tables mirror the
// series the paper plots. Absolute numbers differ from the authors'
// testbed (our substrate is a calibrated simulator); the shapes — who
// wins, by roughly what factor, where the crossovers fall — are the
// reproduction target.
//
// Run all figures:
//
//	go test -bench=. -benchmem
//
// The bench lab trains small models (see benchScale); use
// cmd/lsched-bench -scale paper for paper-scale runs.
package repro

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/lsched"
	"repro/internal/workload"
)

// benchScale keeps `go test -bench=.` within minutes on one core while
// preserving every experiment's structure.
func benchScale() experiments.Scale {
	return experiments.Scale{
		TrainEpisodes: 120,
		TrainQueries:  8,
		EvalQueries:   20,
		Threads:       20,
		Repeats:       1,
		TuneRounds:    6,
	}
}

var (
	labOnce sync.Once
	lab     *experiments.Lab
)

// benchLab is shared across benchmarks so trained agents are reused.
func benchLab() *experiments.Lab {
	labOnce.Do(func() {
		lab = experiments.NewLab(benchScale(), 1)
	})
	return lab
}

// runFigure regenerates one figure and prints its tables once.
func runFigure(b *testing.B, fig string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(benchLab(), fig)
		if err != nil {
			b.Fatalf("figure %s: %v", fig, err)
		}
		if i == 0 {
			for _, t := range tables {
				fmt.Fprintln(os.Stderr, t.String())
			}
		}
	}
}

// BenchmarkFig01IntroExample regenerates Fig. 1: the intro example
// where learned pipeline degrees beat both aggressive critical-path
// pipelining and Decima-style non-pipelining.
func BenchmarkFig01IntroExample(b *testing.B) { runFigure(b, "1") }

// BenchmarkFig08TPCH regenerates Fig. 8: the CDF of TPC-H query
// durations under streaming and batching arrivals for all six
// schedulers.
func BenchmarkFig08TPCH(b *testing.B) { runFigure(b, "8") }

// BenchmarkFig09SSB regenerates Fig. 9: the SSB CDFs.
func BenchmarkFig09SSB(b *testing.B) { runFigure(b, "9") }

// BenchmarkFig10JOB regenerates Fig. 10: the JOB CDFs.
func BenchmarkFig10JOB(b *testing.B) { runFigure(b, "10") }

// BenchmarkFig11Scaling regenerates Fig. 11: sensitivity to the worker
// pool size (a) and the inter-query arrival time (b).
func BenchmarkFig11Scaling(b *testing.B) { runFigure(b, "11") }

// BenchmarkFig12QueryCount regenerates Fig. 12: sensitivity to the
// number of streaming and batched queries.
func BenchmarkFig12QueryCount(b *testing.B) { runFigure(b, "12") }

// BenchmarkFig13Overhead regenerates Fig. 13: per-query scheduling
// latency and learned-agent action counts.
func BenchmarkFig13Overhead(b *testing.B) { runFigure(b, "13") }

// BenchmarkFig14Training regenerates Fig. 14: episodes-to-quality for
// LSched vs Decima (a) and the transfer-learning reward curves (b).
func BenchmarkFig14Training(b *testing.B) { runFigure(b, "14") }

// BenchmarkFig15Ablation regenerates Fig. 15: LSched with each key
// contribution removed.
func BenchmarkFig15Ablation(b *testing.B) { runFigure(b, "15") }

// BenchmarkTrainRollouts measures REINFORCE training wall-clock with
// sequential episode collection (rollouts=1) versus four concurrent
// rollouts per policy update (rollouts=4). Both variants train the
// same 12-episode TPC-H workload; the parallel trainer is a
// deterministic function of (seed, rollouts) regardless of processor
// count, so this isolates the wall-clock effect of concurrent episode
// simulation. The trainer caps its worker pool at GOMAXPROCS — on a
// single-processor run the rollouts=4 arm collects sequentially and
// skips the per-round policy snapshot, so it should track the
// rollouts=1 arm instead of paying goroutine overhead for parallelism
// the host cannot deliver. The procs metric records the processor
// count the numbers were taken at.
func BenchmarkTrainRollouts(b *testing.B) {
	pool, err := workload.NewPool(workload.BenchTPCH, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, rollouts := range []int{1, 4} {
		b.Run(fmt.Sprintf("%d", rollouts), func(b *testing.B) {
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "procs")
			for i := 0; i < b.N; i++ {
				agent := lsched.New(lsched.DefaultOptions(1))
				cfg := lsched.DefaultTrainConfig(1)
				cfg.Episodes = 12
				cfg.Rollouts = rollouts
				cfg.SimCfg = engine.SimConfig{Threads: 6, NoiseFrac: 0.1}
				cfg.Workload = func(ep int, rng *rand.Rand) []engine.Arrival {
					return workload.Streaming(pool.Train, 4, 0.5, rng)
				}
				cfg.BaselineKey = func(ep int) int { return ep % 4 }
				if _, err := lsched.Train(agent, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
